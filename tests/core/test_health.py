"""Adaptive failure detection: RTT estimation, heartbeats, breakers.

The acceptance bar for the health layer is path-independence: the SAME
``ProtocolConfig`` must converge to order-microsecond control timeouts
on the InfiniBand LAN and order-100-ms timeouts on the 49 ms ANI WAN
(Table I of the paper), because a constant that suits one path is wrong
by three orders of magnitude on the other.
"""

import pytest

from repro.apps.io import NullSink, ZeroSource
from repro.core import (
    BreakerState,
    ChannelBreaker,
    ProtocolConfig,
    RdmaMiddleware,
    RttEstimator,
)
from repro.core.health import HealthMonitor
from repro.core.messages import CtrlType
from repro.faults import FaultInjector, FaultPlan, run_chaos
from repro.testbeds import TESTBEDS

SEEDS = [0, 1]


# -- the estimator ------------------------------------------------------------------
def test_estimator_first_sample_seeds_srtt_and_rttvar():
    est = RttEstimator(initial=0.25, floor=1e-6, ceiling=8.0)
    assert est.rto == 0.25  # pre-sample: exactly the static behaviour
    est.observe(0.010)
    assert est.srtt == pytest.approx(0.010)
    assert est.rttvar == pytest.approx(0.005)
    assert est.rto == pytest.approx(0.010 + 4 * 0.005)


def test_estimator_converges_toward_steady_samples():
    est = RttEstimator(initial=0.25, floor=1e-6, ceiling=8.0)
    for _ in range(64):
        est.observe(0.001)
    # RTTVAR decays geometrically on constant samples: RTO -> SRTT.
    assert est.rto == pytest.approx(0.001, rel=0.05)


def test_estimator_clamps_to_floor_and_ceiling():
    est = RttEstimator(initial=0.001, floor=100e-6, ceiling=0.5)
    for _ in range(64):
        est.observe(1e-6)  # far below the floor
    assert est.rto == 100e-6
    for _ in range(64):
        est.observe(10.0)  # far above the ceiling
    assert est.rto == 0.5


def test_estimator_ignores_negative_samples():
    est = RttEstimator(initial=0.25, floor=1e-6, ceiling=8.0)
    est.observe(-1.0)
    assert est.samples == 0 and est.srtt is None


def test_estimator_rejects_inconsistent_bounds():
    with pytest.raises(ValueError):
        RttEstimator(initial=0.1, floor=0.2, ceiling=8.0)
    with pytest.raises(ValueError):
        RttEstimator(initial=10.0, floor=0.1, ceiling=8.0)


# -- derived timeouts ---------------------------------------------------------------
class _FakeEngine:
    def __init__(self):
        self.now = 0.0


def test_request_timeout_backoff_is_capped():
    """Satellite fix: the retry ladder must flatten at ctrl_timeout_max
    instead of doubling without bound."""
    cfg = ProtocolConfig()
    mon = HealthMonitor(_FakeEngine(), cfg)
    ladder = [mon.request_timeout(a) for a in range(12)]
    assert all(t <= cfg.ctrl_timeout_max for t in ladder)
    assert ladder[-1] == cfg.ctrl_timeout_max  # saturates, stays finite
    assert all(b >= a for a, b in zip(ladder, ladder[1:]))


def test_sharp_estimate_cannot_shrink_total_retry_patience():
    """Karn-fed microsecond RTO must not gut the static ladder: a reply
    delayed by a queueing spike still has the configured budget to land."""
    cfg = ProtocolConfig()
    mon = HealthMonitor(_FakeEngine(), cfg)
    for _ in range(64):
        mon.rtt.observe(cfg.ctrl_timeout_min)
    assert mon.request_timeout(0) < cfg.ctrl_timeout  # fast first retry
    for attempt in range(1, 6):
        floor = cfg.ctrl_timeout * cfg.ctrl_backoff ** (attempt - 1)
        assert mon.request_timeout(attempt) >= min(floor, cfg.ctrl_timeout_max)


def test_patience_timeout_only_adapts_upwards():
    cfg = ProtocolConfig()
    mon = HealthMonitor(_FakeEngine(), cfg)
    for _ in range(64):
        mon.rtt.observe(cfg.ctrl_timeout_min)
    assert mon.patience_timeout(0) == cfg.ctrl_timeout
    for _ in range(64):
        mon.rtt.observe(2.0)  # a slow path makes patience grow
    assert mon.patience_timeout(0) > cfg.ctrl_timeout


def test_heartbeat_interval_clamped_to_band():
    cfg = ProtocolConfig()
    mon = HealthMonitor(_FakeEngine(), cfg)
    for _ in range(64):
        mon.rtt.observe(cfg.ctrl_timeout_min)
    assert mon.heartbeat_interval() == cfg.heartbeat_interval_min
    for _ in range(64):
        mon.rtt.observe(5.0)
    assert mon.heartbeat_interval() == cfg.heartbeat_interval_max


def test_pong_rtt_sampling_follows_karns_rule():
    eng = _FakeEngine()
    mon = HealthMonitor(eng, ProtocolConfig())
    nonce = mon.next_ping()
    eng.now = 0.020
    mon.on_pong(nonce - 1)  # stale nonce: ignored
    assert mon.rtt.samples == 0
    nonce = mon.next_ping()
    eng.now = 0.040
    mon.on_pong(nonce)
    assert mon.rtt.samples == 1
    assert mon.rtt.srtt == pytest.approx(0.020)


# -- config validation --------------------------------------------------------------
def test_config_rejects_inconsistent_health_knobs():
    with pytest.raises(ValueError):
        ProtocolConfig(ctrl_timeout_max=0.01)  # below ctrl_timeout
    with pytest.raises(ValueError):
        ProtocolConfig(ctrl_timeout_min=1.0)  # above ctrl_timeout
    with pytest.raises(ValueError):
        ProtocolConfig(heartbeat_interval_min=5.0, heartbeat_interval_max=1.0)
    with pytest.raises(ValueError):
        ProtocolConfig(heartbeat_misses=0)
    with pytest.raises(ValueError):
        ProtocolConfig(breaker_failures=0)


# -- the circuit breaker ------------------------------------------------------------
def test_breaker_trips_after_consecutive_failures_only():
    br = ChannelBreaker(qp_num=7, failures=3, cooldown_fn=lambda: 1.0)
    assert not br.record_failure(now=0.0)
    br.record_success()  # success resets the consecutive count
    assert not br.record_failure(now=0.0)
    assert not br.record_failure(now=0.0)
    assert br.record_failure(now=0.0)  # third consecutive: trips
    assert br.state is BreakerState.OPEN
    assert br.trips == 1
    assert not br.peek_admit(now=0.5)  # quarantined during cooldown
    assert br.peek_admit(now=1.5)  # cooldown elapsed: probe-able


def test_breaker_half_open_admits_single_probe():
    br = ChannelBreaker(qp_num=7, failures=1, cooldown_fn=lambda: 1.0)
    br.record_failure(now=0.0)
    br.note_post(now=2.0)  # OPEN -> HALF_OPEN, probe in flight
    assert br.state is BreakerState.HALF_OPEN
    assert br.probes == 1
    assert not br.peek_admit(now=2.0)  # one probe at a time
    br.record_success()
    assert br.state is BreakerState.CLOSED
    assert br.peek_admit(now=2.0)


def test_breaker_failed_probe_reopens_for_another_cooldown():
    br = ChannelBreaker(qp_num=7, failures=1, cooldown_fn=lambda: 1.0)
    br.record_failure(now=0.0)
    br.note_post(now=2.0)
    assert br.record_failure(now=2.0)  # probe lost: re-trip
    assert br.state is BreakerState.OPEN
    assert br.open_until == pytest.approx(3.0)
    assert br.trips == 2


# -- acceptance: one config, two paths ---------------------------------------------
def _converged_health(testbed_name, total_bytes):
    tb = TESTBEDS[testbed_name]()
    cfg = ProtocolConfig()  # identical config on both paths
    server = RdmaMiddleware(tb.dst, tb.dst_dev, tb.cm, cfg)
    server.serve(4000, NullSink(tb.dst))
    client = RdmaMiddleware(tb.src, tb.src_dev, tb.cm, cfg)
    holder = {}

    def _run():
        link = yield client.open_link(tb.dst_dev, 4000)
        holder["health"] = link.health
        yield client.transfer(
            tb.dst_dev, 4000, ZeroSource(tb.src), total_bytes, link=link
        )

    done = tb.engine.process(_run())
    tb.engine.run()
    assert done.triggered and done.ok
    return holder["health"]


def test_rto_converges_per_path_from_one_config():
    """Same config: order-µs timeouts on the IB LAN, order-100 ms on the
    49 ms WAN — the acceptance criterion for the estimator."""
    lan = _converged_health("infiniband-lan", 16 << 20)
    wan = _converged_health("ani-wan", 64 << 20)
    assert lan.rtt.samples > 0 and wan.rtt.samples > 0
    assert lan.rtt.rto < 1e-3  # sub-millisecond on a 13 µs path
    assert 0.045 < wan.rtt.rto < 1.0  # dominated by the 49 ms RTT
    assert wan.rtt.rto / lan.rtt.rto > 50.0
    # Synchronous first-attempt timeouts inherit the split; patience
    # paths never dip below the configured base on either path.
    cfg = ProtocolConfig()
    assert lan.request_timeout(0) < 1e-3
    assert wan.request_timeout(0) > 0.045
    assert lan.patience_timeout(0) >= cfg.ctrl_timeout


# -- heartbeats end to end ----------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_long_outage_detected_as_peer_dead(seed):
    """A 10 s blackout: the heartbeat thread must declare PeerDead long
    before the ~16 s control-retry budget would.  The first heartbeat
    check lands at the pre-convergence 2 s clamp (no RTT samples when
    the thread starts); after it, the converged LAN cadence (50 ms)
    burns the miss budget in ~0.2 s."""
    r = run_chaos(
        "roce-lan",
        total_bytes=16 << 20,
        plan=FaultPlan(seed=seed, link_flaps=((0.002, 10.0),)),
        config=ProtocolConfig(
            block_size=256 * 1024, num_channels=2,
            source_blocks=8, sink_blocks=8,
        ),
        horizon=120.0,
    )
    assert not r.completed
    assert r.error == "PeerDead"
    assert r.sim_time < 5.0  # far inside the static retry budget
    assert r.leaks == ()
    assert r.clean


@pytest.mark.parametrize("seed", SEEDS)
def test_heartbeat_drop_seam_counts_and_kills(seed):
    """With every PING/PONG eaten by the injector during the outage the
    abort decision is unchanged, and the drops are visible in the
    result."""
    r = run_chaos(
        "roce-lan",
        total_bytes=16 << 20,
        plan=FaultPlan(
            seed=seed, link_flaps=((0.002, 10.0),), heartbeat_drop_rate=1.0
        ),
        config=ProtocolConfig(
            block_size=256 * 1024, num_channels=2,
            source_blocks=8, sink_blocks=8,
        ),
        horizon=120.0,
    )
    assert not r.completed
    assert r.error == "PeerDead"
    assert r.heartbeat_drops > 0
    assert r.leaks == ()
    assert r.clean


def test_heartbeat_seam_is_independent_of_data_seam():
    """Enabling heartbeat drops must not perturb the data seam's draws —
    same per-seam stream discipline as the other fault classes."""
    data_only = FaultInjector(FaultPlan(seed=5, write_fault_rate=0.3))
    both = FaultInjector(
        FaultPlan(seed=5, write_fault_rate=0.3, heartbeat_drop_rate=0.9)
    )
    decisions_a, decisions_b = [], []
    for _ in range(50):
        decisions_a.append(data_only.data_qp_hook(None))
        both.ctrl_hook(
            type("M", (), {"type": CtrlType.PING, "session_id": 0, "data": 1})()
        )
        decisions_b.append(both.data_qp_hook(None))
    assert decisions_a == decisions_b
    assert any(decisions_a)


def test_plan_validates_heartbeat_drop_rate():
    with pytest.raises(ValueError):
        FaultPlan(heartbeat_drop_rate=1.5)
    assert FaultPlan(heartbeat_drop_rate=0.2).any_faults
    assert FaultPlan(fallback_deny=True).any_faults
