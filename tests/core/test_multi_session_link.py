"""Multi-session links: many transfer jobs over one connection set
(§IV-C's global session identifiers)."""

import pytest

from repro.apps.io import CollectingSink, PatternSource
from repro.core import ProtocolConfig, RdmaMiddleware
from repro.testbeds import roce_lan


def cfg(**over):
    base = dict(
        block_size=256 * 1024,
        num_channels=2,
        source_blocks=12,
        sink_blocks=12,
    )
    base.update(over)
    return ProtocolConfig(**base)


def wire(tb, c):
    server = RdmaMiddleware(tb.dst, tb.dst_dev, tb.cm, c)
    sink = CollectingSink(tb.dst)
    server.serve(4000, sink)
    client = RdmaMiddleware(tb.src, tb.src_dev, tb.cm, c)
    return server, sink, client


def test_concurrent_sessions_share_one_link():
    tb = roce_lan()
    c = cfg()
    server, sink, client = wire(tb, c)
    total = 8 << 20
    results = {}

    def driver(env):
        link = client.open_link(tb.dst_dev, 4000, c)
        link = yield link
        qps_after_link = len(tb.src_dev.qps)
        jobs = [
            link.transfer(PatternSource(tb.src), total, session_id=100 + i)
            for i in range(3)
        ]
        for ev in jobs:
            job = yield ev
            results[job.session_id] = job
        # No extra QPs were created for the 2nd and 3rd sessions.
        assert len(tb.src_dev.qps) == qps_after_link
        return link

    driver_proc = tb.engine.process(driver(tb.engine))
    tb.engine.run()
    assert driver_proc.ok
    assert set(results) == {100, 101, 102}
    # Every session delivered fully and in order.
    blocks = total // c.block_size
    for sid in results:
        seqs = [h.seq for h, _ in sink.deliveries if h.session_id == sid]
        assert seqs == list(range(blocks))
    assert sink.bytes_written == 3 * total
    # Sessions truly interleaved on the shared link (not serialised).
    order = [h.session_id for h, _ in sink.deliveries]
    first_of = {sid: order.index(sid) for sid in results}
    last_of = {sid: len(order) - 1 - order[::-1].index(sid) for sid in results}
    overlaps = sum(
        1
        for a in results
        for b in results
        if a < b and first_of[b] < last_of[a]
    )
    assert overlaps >= 1


def test_sequential_sessions_reuse_link():
    tb = roce_lan()
    c = cfg()
    server, sink, client = wire(tb, c)

    def driver(env):
        link = yield client.open_link(tb.dst_dev, 4000, c)
        for i in range(3):
            outcome = yield client.transfer(
                tb.dst_dev, 4000, PatternSource(tb.src), 4 << 20, link=link
            )
            assert outcome.bytes == 4 << 20
        return len(tb.src_dev.qps)

    p = tb.engine.process(driver(tb.engine))
    tb.engine.run()
    assert p.ok
    # ctrl + num_channels QPs, once.
    assert p.value == 1 + c.num_channels
    assert sink.bytes_written == 12 << 20


def test_duplicate_session_id_rejected():
    tb = roce_lan()
    c = cfg()
    server, sink, client = wire(tb, c)

    def driver(env):
        link = yield client.open_link(tb.dst_dev, 4000, c)
        link.transfer(PatternSource(tb.src), 4 << 20, session_id=5)
        with pytest.raises(ValueError):
            link.transfer(PatternSource(tb.src), 4 << 20, session_id=5)
        return True

    p = tb.engine.process(driver(tb.engine))
    tb.engine.run()
    assert p.ok and p.value


def test_block_size_mismatch_rejected_within_one_channel():
    """A sink engine's pool is registered for one block size; a later
    session on the *same control channel* negotiating a different size
    must be refused (a fresh link gets a fresh engine and may differ)."""
    from repro.core.messages import ControlMessage, CtrlType

    tb = roce_lan()
    c = cfg()
    server, sink, client = wire(tb, c)
    first = client.transfer(tb.dst_dev, 4000, PatternSource(tb.src), 4 << 20)
    tb.engine.run()
    assert first.ok

    engine = next(iter(server.sink_engines.values()))
    thread = tb.dst.thread("test-driver")

    session_id = first.value.session_id  # known to the client's link

    def drive(env):
        # Same size: accepted.  Different size: refused.
        for size in (c.block_size, 512 * 1024):
            msg = ControlMessage(CtrlType.BLOCK_SIZE_REQ, session_id, size)
            yield env.process(engine._dispatch(thread, msg))

    # Capture what the sink sends back.
    sent = []
    original = engine.ctrl.send

    def capture(th, msg):
        sent.append(msg)
        yield from original(th, msg)

    engine.ctrl.send = capture
    tb.engine.process(drive(tb.engine))
    tb.engine.run()
    verdicts = [m.data for m in sent if m.type is CtrlType.BLOCK_SIZE_REP]
    assert verdicts == [True, False]


def test_shared_ledger_and_pool_across_sessions():
    tb = roce_lan()
    c = cfg()
    server, sink, client = wire(tb, c)
    captured = {}

    def driver(env):
        link = yield client.open_link(tb.dst_dev, 4000, c)
        captured["link"] = link
        jobs = [
            link.transfer(PatternSource(tb.src), 8 << 20, session_id=200 + i)
            for i in range(2)
        ]
        for ev in jobs:
            yield ev

    p = tb.engine.process(driver(tb.engine))
    tb.engine.run()
    assert p.ok
    link = captured["link"]
    # One ledger served both sessions; the pool fully recycled.
    assert link.ledger.total_received > 0
    assert link.pool.free_count == len(link.pool)
    assert not link._inflight
