"""Protocol configuration validation."""

import pytest

from repro.core import ProtocolConfig


def test_defaults_valid():
    cfg = ProtocolConfig()
    assert cfg.block_size == 4 * 1024 * 1024
    assert cfg.proactive_credits
    assert cfg.credit_grant_ratio == 2


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(block_size=1024),
        dict(num_channels=0),
        dict(source_blocks=1),
        dict(sink_blocks=1),
        dict(credit_grant_ratio=0),
        dict(initial_credits=0),
        dict(initial_credits=33, sink_blocks=32),
        dict(reader_threads=0),
        dict(writer_threads=0),
    ],
)
def test_invalid_configs_rejected(kwargs):
    with pytest.raises(ValueError):
        ProtocolConfig(**kwargs)


def test_frozen():
    cfg = ProtocolConfig()
    with pytest.raises(Exception):
        cfg.block_size = 1
