"""The buffer-block finite state machines of Figure 6."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.blocks import (
    BlockStateError,
    SinkBlock,
    SinkBlockState,
    SourceBlock,
    SourceBlockState,
)
from repro.core.messages import BlockHeader


class _FakeMr:
    pass


def header(seq=0):
    return BlockHeader(session_id=1, seq=seq, offset=seq * 4096, length=4096)


# -- source FSM ------------------------------------------------------------------
def test_source_happy_path():
    blk = SourceBlock(0, _FakeMr())
    assert blk.state is SourceBlockState.FREE
    blk.reserve()
    assert blk.state is SourceBlockState.LOADING
    blk.loaded(header(), payload="data")
    assert blk.state is SourceBlockState.LOADED
    blk.sending()
    assert blk.state is SourceBlockState.SENDING
    blk.waiting()
    assert blk.state is SourceBlockState.WAITING
    blk.release()
    assert blk.state is SourceBlockState.FREE
    assert blk.header is None and blk.payload is None


def test_source_resend_path():
    blk = SourceBlock(0, _FakeMr())
    blk.reserve()
    blk.loaded(header())
    blk.sending()
    blk.waiting()
    blk.resend()
    assert blk.state is SourceBlockState.LOADED
    assert blk.header is not None  # data still valid for re-send


@pytest.mark.parametrize(
    "method",
    ["loaded", "sending", "waiting", "release", "resend"],
)
def test_source_illegal_from_free(method):
    blk = SourceBlock(0, _FakeMr())
    with pytest.raises(BlockStateError):
        if method == "loaded":
            blk.loaded(header())
        else:
            getattr(blk, method)()


def test_source_double_reserve_rejected():
    blk = SourceBlock(0, _FakeMr())
    blk.reserve()
    with pytest.raises(BlockStateError):
        blk.reserve()


# -- sink FSM --------------------------------------------------------------------
def test_sink_happy_path():
    blk = SinkBlock(0, _FakeMr())
    assert blk.state is SinkBlockState.FREE
    blk.advertise()
    assert blk.state is SinkBlockState.WAITING
    blk.finish(header(), payload="landed")
    assert blk.state is SinkBlockState.READY
    assert blk.consume() == "landed"
    assert blk.state is SinkBlockState.FREE


def test_sink_finish_requires_waiting():
    blk = SinkBlock(0, _FakeMr())
    with pytest.raises(BlockStateError):
        blk.finish(header())


def test_sink_consume_requires_ready():
    blk = SinkBlock(0, _FakeMr())
    blk.advertise()
    with pytest.raises(BlockStateError):
        blk.consume()


def test_sink_double_advertise_rejected():
    blk = SinkBlock(0, _FakeMr())
    blk.advertise()
    with pytest.raises(BlockStateError):
        blk.advertise()


# -- hypothesis: guards hold under arbitrary call sequences ----------------------------
_SOURCE_OPS = ["reserve", "loaded", "sending", "waiting", "release", "resend"]
_LEGAL_SOURCE = {
    SourceBlockState.FREE: {"reserve"},
    SourceBlockState.LOADING: {"loaded"},
    SourceBlockState.LOADED: {"sending"},
    SourceBlockState.SENDING: {"waiting"},
    SourceBlockState.WAITING: {"release", "resend"},
}


@settings(max_examples=100, deadline=None)
@given(ops=st.lists(st.sampled_from(_SOURCE_OPS), max_size=40))
def test_source_fsm_guards_complete(ops):
    """Every op either performs a legal transition or raises — the block
    never reaches an undefined state."""
    blk = SourceBlock(0, _FakeMr())
    for op in ops:
        legal = op in _LEGAL_SOURCE[blk.state]
        try:
            if op == "loaded":
                blk.loaded(header())
            else:
                getattr(blk, op)()
        except BlockStateError:
            assert not legal
        else:
            assert legal
        assert blk.state in SourceBlockState


_SINK_OPS = ["advertise", "finish", "consume"]
_LEGAL_SINK = {
    SinkBlockState.FREE: {"advertise"},
    SinkBlockState.WAITING: {"finish"},
    SinkBlockState.READY: {"consume"},
}


@settings(max_examples=100, deadline=None)
@given(ops=st.lists(st.sampled_from(_SINK_OPS), max_size=40))
def test_sink_fsm_guards_complete(ops):
    blk = SinkBlock(0, _FakeMr())
    for op in ops:
        legal = op in _LEGAL_SINK[blk.state]
        try:
            if op == "finish":
                blk.finish(header())
            else:
                getattr(blk, op)()
        except BlockStateError:
            assert not legal
        else:
            assert legal
        assert blk.state in SinkBlockState
