"""End-to-end middleware transfers: correctness, ordering, and the
protocol invariants of §IV."""


from repro.apps.io import CollectingSink, PatternSource
from repro.core import ProtocolConfig, RdmaMiddleware
from repro.testbeds import ani_wan, roce_lan


def small_cfg(**over):
    base = dict(
        block_size=256 * 1024,
        num_channels=2,
        source_blocks=8,
        sink_blocks=8,
        reader_threads=1,
        writer_threads=1,
    )
    base.update(over)
    return ProtocolConfig(**base)


def run_transfer(tb, cfg, total_bytes, port=4000):
    server = RdmaMiddleware(tb.dst, tb.dst_dev, tb.cm, cfg)
    sink = CollectingSink(tb.dst)
    server.serve(port, sink)
    client = RdmaMiddleware(tb.src, tb.src_dev, tb.cm, cfg)
    source = PatternSource(tb.src)
    done = client.transfer(tb.dst_dev, port, source, total_bytes)
    tb.engine.run()
    assert done.triggered and done.ok, "transfer deadlocked"
    return done.value, sink, source, server


def test_all_bytes_delivered_in_order():
    tb = roce_lan()
    cfg = small_cfg()
    total = 16 << 20
    outcome, sink, source, _ = run_transfer(tb, cfg, total)
    blocks = total // cfg.block_size
    assert outcome.blocks == blocks
    assert len(sink.deliveries) == blocks
    # Strictly in-order delivery of the full sequence.
    assert [h.seq for h, _ in sink.deliveries] == list(range(blocks))
    # Payload integrity end to end.
    for h, payload in sink.deliveries:
        assert payload == ("blk", h.seq, h.length)
    assert sink.bytes_written == total
    assert source.bytes_read == total


def test_partial_final_block():
    tb = roce_lan()
    cfg = small_cfg()
    total = cfg.block_size * 3 + 12345
    outcome, sink, _, _ = run_transfer(tb, cfg, total)
    assert outcome.blocks == 4
    assert sink.deliveries[-1][0].length == 12345
    assert sink.bytes_written == total


def test_offsets_cover_dataset_exactly():
    tb = roce_lan()
    cfg = small_cfg()
    total = 8 << 20
    _, sink, _, _ = run_transfer(tb, cfg, total)
    covered = 0
    for h, _ in sink.deliveries:
        assert h.offset == covered
        covered += h.length
    assert covered == total


def test_no_rnr_in_healthy_run():
    """Credit flow control must prevent Receiver-Not-Ready entirely."""
    tb = roce_lan()
    outcome, _, _, _ = run_transfer(tb, small_cfg(), 16 << 20)
    assert outcome.rnr_naks == 0


def test_no_resends_on_clean_fabric():
    tb = roce_lan()
    outcome, _, _, _ = run_transfer(tb, small_cfg(), 16 << 20)
    assert outcome.resends == 0


def test_pools_fully_recycled_after_transfer():
    tb = roce_lan()
    cfg = small_cfg()
    _, _, _, server = run_transfer(tb, cfg, 16 << 20)
    engine = next(iter(server.sink_engines.values()))
    from repro.core.blocks import SinkBlockState

    # After teardown every block is either back in the free list or
    # re-advertised as a credit for a future session — never stuck READY,
    # never leaked.
    states = [b.state for b in engine.pool.blocks.values()]
    assert all(
        s in (SinkBlockState.FREE, SinkBlockState.WAITING) for s in states
    )
    advertised = sum(1 for s in states if s is SinkBlockState.WAITING)
    assert engine.pool.free_count + advertised == cfg.sink_blocks
    assert engine.reassembly.pending(1) == 0


def test_multiple_channels_preserve_order():
    tb = roce_lan()
    cfg = small_cfg(num_channels=4)
    total = 32 << 20
    outcome, sink, _, _ = run_transfer(tb, cfg, total)
    assert [h.seq for h, _ in sink.deliveries] == list(range(outcome.blocks))


def test_single_channel_works():
    tb = roce_lan()
    outcome, sink, _, _ = run_transfer(tb, small_cfg(num_channels=1), 8 << 20)
    assert len(sink.deliveries) == outcome.blocks


def test_on_demand_credits_still_correct_but_chattier():
    """The Tian-style ablation must stay functionally correct."""
    tb = roce_lan()
    cfg = small_cfg(proactive_credits=False)
    total = 16 << 20
    outcome, sink, _, _ = run_transfer(tb, cfg, total)
    assert len(sink.deliveries) == outcome.blocks
    assert [h.seq for h, _ in sink.deliveries] == list(range(outcome.blocks))
    assert outcome.mr_requests >= outcome.blocks / 2  # begging constantly


def test_proactive_beats_on_demand_on_wan():
    """§IV-A: saving the credit-request RTT matters when RTT is large."""

    def run(proactive):
        tb = ani_wan()
        cfg = ProtocolConfig(
            block_size=4 << 20,
            num_channels=2,
            source_blocks=48,
            sink_blocks=48,
            proactive_credits=proactive,
        )
        outcome, _, _, _ = run_transfer(tb, cfg, 2 << 30)
        return outcome.gbps

    assert run(True) > run(False) * 1.05


def test_sequential_transfers_same_client():
    tb = roce_lan()
    cfg = small_cfg()
    server = RdmaMiddleware(tb.dst, tb.dst_dev, tb.cm, cfg)
    sink = CollectingSink(tb.dst)
    server.serve(4000, sink)
    client = RdmaMiddleware(tb.src, tb.src_dev, tb.cm, cfg)

    def driver(env):
        for _ in range(2):
            outcome = yield client.transfer(
                tb.dst_dev, 4000, PatternSource(tb.src), 4 << 20
            )
            assert outcome.bytes == 4 << 20
        return True

    p = tb.engine.process(driver(tb.engine))
    tb.engine.run()
    assert p.ok and p.value
    assert sink.bytes_written == 8 << 20


def test_control_traffic_scales_with_blocks():
    tb = roce_lan()
    cfg = small_cfg()
    total = 16 << 20
    outcome, _, _, _ = run_transfer(tb, cfg, total)
    # Per block: one BLOCK_DONE; plus negotiation, teardown, MR requests.
    assert outcome.ctrl_sent >= outcome.blocks
    assert outcome.ctrl_sent < outcome.blocks * 3 + 16


def test_bigger_blocks_less_control_traffic():
    tb1 = roce_lan()
    o1, _, _, _ = run_transfer(tb1, small_cfg(block_size=256 * 1024), 16 << 20)
    tb2 = roce_lan()
    o2, _, _, _ = run_transfer(tb2, small_cfg(block_size=1 << 20), 16 << 20)
    assert o2.ctrl_sent < o1.ctrl_sent


def test_sink_cpu_negligible_vs_source():
    """One-sided RDMA WRITE: the sink does not touch the data path."""
    tb = roce_lan()
    _, _, _, _ = run_transfer(tb, small_cfg(), 64 << 20)
    assert tb.dst.cpu.busy_seconds() < tb.src.cpu.busy_seconds() * 0.5
