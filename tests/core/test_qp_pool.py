"""Connection scaling: the per-host QP pool, SRQ receive path, and the
eager/rendezvous transport switch.

Covers the srq-mode seams end to end — eager SEND/RECV delivery,
rendezvous under the shared pool, concurrent sessions multiplexed over
one channel set — plus the lease accounting the scheduler's door caps
derive from: capacity rejection, abort-path lease return, and the
``pinned_fraction`` brownout watermark under concurrent lease/release
interleavings.
"""

import pytest

from repro.apps.io import CollectingSink, PatternSource
from repro.core import ProtocolConfig, RdmaMiddleware
from repro.core.errors import TransferError
from repro.core.pool import ResourcePool
from repro.sim.engine import Engine
from repro.testbeds import roce_lan

BS = 256 * 1024


def cfg(**over):
    base = dict(
        block_size=BS,
        num_channels=2,
        source_blocks=8,
        sink_blocks=8,
        reader_threads=1,
        writer_threads=1,
        use_srq=True,
        srq_depth=32,
        qp_pool_size=2,
        pool_sessions=8,
        eager_threshold=BS,  # block-sized payloads ride eager
    )
    base.update(over)
    return ProtocolConfig(**base)


def wire(tb, c):
    server = RdmaMiddleware(tb.dst, tb.dst_dev, tb.cm, c)
    sink = CollectingSink(tb.dst)
    server.serve(4000, sink)
    client = RdmaMiddleware(tb.src, tb.src_dev, tb.cm, c)
    return server, sink, client


def run_transfer(c, total):
    tb = roce_lan()
    server, sink, client = wire(tb, c)
    done = client.transfer(tb.dst_dev, 4000, PatternSource(tb.src), total)
    tb.engine.run()
    assert done.triggered and done.ok, getattr(done, "value", "deadlock")
    return tb, server, sink, client, done.value


def assert_delivery(sink, c, total):
    blocks = (total + c.block_size - 1) // c.block_size
    assert len(sink.deliveries) == blocks
    assert [h.seq for h, _ in sink.deliveries] == list(range(blocks))
    for h, payload in sink.deliveries:
        assert payload == ("blk", h.seq, h.length)
    assert sink.bytes_written == total


# -- ResourcePool accounting --------------------------------------------------

def test_resource_pool_lease_accounting():
    pool = ResourcePool(Engine(), capacity=2)
    a, b, c = object(), object(), object()
    assert pool.lease(a) and pool.lease(b)
    assert not pool.lease(a), "double lease by one owner must be refused"
    assert not pool.lease(c), "capacity exceeded"
    assert pool.leased == 2 and pool.available == 0
    assert pool.holds(a) and not pool.holds(c)
    assert pool.release(a)
    assert not pool.release(a), "release must be idempotent"
    assert pool.lease(c)
    assert pool.release(b) and pool.release(c)
    assert pool.balanced and pool.pinned_fraction == 0.0


def test_pinned_fraction_under_concurrent_interleavings():
    """The brownout watermark seam: many processes leasing and releasing
    concurrently, with deterministic but staggered hold times.  The
    fraction must stay within [0, 1] at every sample, reach the high
    watermark under peak contention, and return to 0 (balanced) once
    the churn drains — with the counters agreeing on every transition."""
    engine = Engine()
    pool = ResourcePool(engine, capacity=4)
    samples = []
    granted = rejected = 0

    def session(i):
        nonlocal granted, rejected
        yield engine.timeout(i * 1e-4)
        owner = ("session", i)
        while not pool.lease(owner):
            rejected += 1
            samples.append(pool.pinned_fraction)
            yield engine.timeout(3e-4)
        granted += 1
        samples.append(pool.pinned_fraction)
        # Staggered hold times force lease/release interleavings that
        # overlap every phase of the other sessions' lifecycles.
        yield engine.timeout((1 + i % 5) * 2e-4)
        assert pool.release(owner)
        assert not pool.release(owner), "idempotence under interleaving"
        samples.append(pool.pinned_fraction)

    for i in range(16):
        engine.process(session(i))
    engine.run()

    assert granted == 16, "every session must eventually get a lease"
    assert rejected > 0, "capacity 4 under 16 sessions must refuse some"
    assert all(0.0 <= f <= 1.0 for f in samples)
    assert max(samples) == 1.0, "peak contention must hit the watermark"
    assert pool.balanced and pool.pinned_fraction == 0.0
    assert int(pool._m_leases.total) == 16
    assert int(pool._m_releases.total) == 16
    assert int(pool._m_rejected.total) == rejected


# -- transport paths over the shared pool -------------------------------------

def test_eager_transfer_end_to_end():
    c = cfg()
    tb, server, sink, client, out = run_transfer(c, 16 * BS)
    assert_delivery(sink, c, 16 * BS)
    # Eager blocks ride SEND/RECV: no per-block BLOCK_DONE round trips,
    # and the sink's SRQ consumed one shared WQE per block.
    consumed = sum(
        row["value"] for row in tb.engine.metrics.snapshot()
        if row["metric"] == "srq.consumed"
    )
    assert consumed >= 16
    hpool = next(iter(client._host_pools.values()))
    assert hpool.sessions.balanced


def test_rendezvous_under_pool_end_to_end():
    c = cfg(eager_threshold=0)  # pool on, eager off
    tb, server, sink, client, out = run_transfer(c, 16 * BS)
    assert_delivery(sink, c, 16 * BS)
    hpool = next(iter(client._host_pools.values()))
    assert hpool.sessions.balanced


def test_eager_partial_final_block():
    c = cfg()
    total = 3 * BS + 12345
    tb, server, sink, client, out = run_transfer(c, total)
    assert_delivery(sink, c, total)


def test_disabled_pool_leaves_dedicated_path():
    c = cfg(use_srq=False)
    tb, server, sink, client, out = run_transfer(c, 8 * BS)
    assert_delivery(sink, c, 8 * BS)
    assert not client._host_pools, "no host pool without use_srq"
    assert server._srq is None


def test_concurrent_sessions_share_one_pool():
    """Six sessions multiplexed over one 2-QP host pool: every byte
    delivered, wr_id routing never crosses sessions, leases balanced."""
    tb = roce_lan()
    c = cfg()
    server, sink, client = wire(tb, c)
    link_ev = client.open_link(tb.dst_dev, 4000)

    def driver(env):
        link = yield link_ev
        evs = [
            client.transfer(
                tb.dst_dev, 4000, PatternSource(tb.src), 8 * BS, link=link
            )
            for _ in range(6)
        ]
        outs = []
        for ev in evs:
            outs.append((yield ev))
        return outs

    p = tb.engine.process(driver(tb.engine))
    tb.engine.run()
    assert p.triggered and p.ok, getattr(p, "value", "deadlock")
    assert sink.bytes_written == 6 * 8 * BS
    hpool = next(iter(client._host_pools.values()))
    assert len(client._host_pools) == 1
    assert hpool.sessions.balanced, f"leaked: {hpool.sessions.leased}"


# -- lease lifecycle: capacity and abort paths --------------------------------

def test_lease_capacity_rejection_is_synchronous():
    tb = roce_lan()
    c = cfg(pool_sessions=2)
    server, sink, client = wire(tb, c)
    link_ev = client.open_link(tb.dst_dev, 4000)

    def driver(env):
        link = yield link_ev
        a = link.transfer(PatternSource(tb.src), 8 * BS, session_id=500)
        b = link.transfer(PatternSource(tb.src), 8 * BS, session_id=501)
        with pytest.raises(ValueError, match="lease capacity"):
            link.transfer(PatternSource(tb.src), 8 * BS, session_id=502)
        yield a
        yield b
        # Both leases returned: a third session now fits.
        assert link._host_pool.sessions.balanced
        yield link.transfer(PatternSource(tb.src), 8 * BS, session_id=502)

    p = tb.engine.process(driver(tb.engine))
    tb.engine.run()
    assert p.triggered and p.ok, getattr(p, "value", "deadlock")
    assert sink.bytes_written == 3 * 8 * BS


def test_abort_returns_lease():
    """Surgical teardown (the scheduler's cancel/deadline/watchdog path)
    must return the channel lease like normal completion does."""
    tb = roce_lan()
    c = cfg(eager_threshold=0, heartbeats=False)
    server, sink, client = wire(tb, c)
    link_ev = client.open_link(tb.dst_dev, 4000)

    def driver(env):
        link = yield link_ev
        ev = link.transfer(PatternSource(tb.src), 64 * BS, session_id=600)
        assert link._host_pool.sessions.leased == 1
        yield env.timeout(1e-3)
        assert link.abort_session(
            600, TransferError(600, "canceled by test")
        )
        assert link._host_pool.sessions.balanced, "abort leaked the lease"
        try:
            yield ev
        except TransferError:
            pass
        else:  # pragma: no cover - abort must fail the session
            raise AssertionError("aborted session resolved cleanly")

    p = tb.engine.process(driver(tb.engine))
    tb.engine.run()
    assert p.triggered and p.ok, getattr(p, "value", "deadlock")


def test_source_crash_returns_every_lease():
    tb = roce_lan()
    c = cfg(eager_threshold=0, heartbeats=False)
    server, sink, client = wire(tb, c)
    link_ev = client.open_link(tb.dst_dev, 4000)

    def driver(env):
        link = yield link_ev
        evs = [
            link.transfer(PatternSource(tb.src), 32 * BS, session_id=700 + i)
            for i in range(3)
        ]
        assert link._host_pool.sessions.leased == 3
        yield env.timeout(1e-3)
        link.crash()
        assert link._host_pool.sessions.balanced, "crash leaked leases"
        for ev in evs:
            try:
                yield ev
            except TransferError:
                pass

    p = tb.engine.process(driver(tb.engine))
    tb.engine.run()
    assert p.triggered and p.ok, getattr(p, "value", "deadlock")
