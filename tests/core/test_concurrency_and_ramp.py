"""Concurrent sessions, the credit ramp, and end-to-end property tests."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.io import CollectingSink, PatternSource
from repro.core import ProtocolConfig, RdmaMiddleware
from repro.testbeds import ani_wan, roce_lan


def cfg(**over):
    base = dict(
        block_size=256 * 1024,
        num_channels=2,
        source_blocks=8,
        sink_blocks=8,
    )
    base.update(over)
    return ProtocolConfig(**base)


# -- concurrent clients --------------------------------------------------------------
def test_two_concurrent_clients_one_server():
    tb = roce_lan()
    c = cfg()
    server = RdmaMiddleware(tb.dst, tb.dst_dev, tb.cm, c)
    sink = CollectingSink(tb.dst)
    server.serve(4000, sink)

    clients = [RdmaMiddleware(tb.src, tb.src_dev, tb.cm, c) for _ in range(2)]
    total = 16 << 20
    dones = [
        cl.transfer(tb.dst_dev, 4000, PatternSource(tb.src), total)
        for cl in clients
    ]
    tb.engine.run()
    outcomes = [d.value for d in dones]
    session_ids = {o.session_id for o in outcomes}
    assert len(session_ids) == 2
    assert all(o.bytes == total for o in outcomes)
    assert sink.bytes_written == 2 * total
    # Per-session in-order delivery despite interleaved arrivals.
    for sid in session_ids:
        seqs = [h.seq for h, _ in sink.deliveries if h.session_id == sid]
        assert seqs == sorted(seqs) == list(range(len(seqs)))


def test_concurrent_transfers_share_bandwidth_fairly():
    tb = roce_lan()
    c = cfg(block_size=1 << 20, source_blocks=16, sink_blocks=16)
    server = RdmaMiddleware(tb.dst, tb.dst_dev, tb.cm, c)
    server.serve(4000, CollectingSink(tb.dst))
    total = 128 << 20
    dones = []
    for _ in range(2):
        client = RdmaMiddleware(tb.src, tb.src_dev, tb.cm, c)
        dones.append(client.transfer(tb.dst_dev, 4000, PatternSource(tb.src), total))
    tb.engine.run()
    rates = [d.value.gbps for d in dones]
    # Both complete; combined they cannot exceed the wire.
    assert all(r > 5.0 for r in rates)
    assert sum(rates) < 41.0 * 2  # each's average includes overlap


# -- credit ramp -----------------------------------------------------------------------
def test_credit_ramp_is_exponential_on_wan():
    """§IV-C: 'an exponential increase in the number of available remote
    MR in the data source at the beginning of a data transfer session...
    similar to the slow start of TCP'."""
    tb = ani_wan()
    c = ProtocolConfig(
        block_size=4 << 20,
        num_channels=2,
        source_blocks=32,
        sink_blocks=32,
        initial_credits=2,
        credit_grant_ratio=2,
    )
    server = RdmaMiddleware(tb.dst, tb.dst_dev, tb.cm, c)
    server.serve(4000, CollectingSink(tb.dst))
    client = RdmaMiddleware(tb.src, tb.src_dev, tb.cm, c)

    links = {}

    def driver(env):
        link = yield client.open_link(tb.dst_dev, 4000, c)
        links["link"] = link
        yield client.transfer(
            tb.dst_dev, 4000, PatternSource(tb.src), 2 << 30, link=link
        )

    done = tb.engine.process(driver(tb.engine))
    tb.engine.run()
    assert done.ok
    history = links["link"].ledger.history
    t0 = history[0][0]
    rtt = tb.rtt

    def received_by(t):
        vals = [total for ts, total in history if ts <= t]
        return vals[-1] if vals else 0

    # Within ~6 RTTs the cumulative credits must have grown far beyond a
    # linear 1-per-RTT dribble (exponential ramp fills the BDP fast).
    after_6_rtt = received_by(t0 + 6.2 * rtt)
    assert after_6_rtt >= 16, f"ramp too slow: {after_6_rtt} credits in 6 RTT"
    # And the ramp accelerates: later RTT windows deliver more than the
    # first ones.
    first_window = received_by(t0 + 2.2 * rtt)
    assert after_6_rtt > 2 * first_window


def test_x2_ramp_accumulates_credits_faster_than_x1():
    """The grant ratio shapes the *startup* ramp: compare cumulative
    credits received in the first few RTTs (steady state converges to
    block-recycling for both policies)."""

    def credits_after(ratio, rtts=5.2):
        tb = ani_wan()
        c = ProtocolConfig(
            block_size=4 << 20,
            num_channels=2,
            source_blocks=32,
            sink_blocks=32,
            credit_grant_ratio=ratio,
        )
        server = RdmaMiddleware(tb.dst, tb.dst_dev, tb.cm, c)
        server.serve(4000, CollectingSink(tb.dst))
        client = RdmaMiddleware(tb.src, tb.src_dev, tb.cm, c)
        links = {}

        def driver(env):
            link = yield client.open_link(tb.dst_dev, 4000, c)
            links["link"] = link
            yield client.transfer(
                tb.dst_dev, 4000, PatternSource(tb.src), 2 << 30, link=link
            )

        tb.engine.process(driver(tb.engine))
        tb.engine.run()
        history = links["link"].ledger.history
        t0 = history[0][0]
        cutoff = t0 + rtts * tb.rtt
        received = [total for ts, total in history if ts <= cutoff]
        return received[-1] if received else 0

    assert credits_after(2) > 1.4 * credits_after(1)


# -- hypothesis: protocol correctness across configurations ------------------------------
@settings(max_examples=12, deadline=None)
@given(
    block_kib=st.sampled_from([64, 256, 1024]),
    channels=st.integers(min_value=1, max_value=4),
    pool=st.integers(min_value=2, max_value=12),
    extra_bytes=st.integers(min_value=0, max_value=4095),
)
def test_transfer_correct_for_any_configuration(block_kib, channels, pool, extra_bytes):
    """For any (block size, channel count, pool size, ragged tail): every
    byte arrives, in order, exactly once, with zero RNR NAKs."""
    tb = roce_lan()
    c = ProtocolConfig(
        block_size=block_kib << 10,
        num_channels=channels,
        source_blocks=pool,
        sink_blocks=pool,
        initial_credits=min(2, pool),
        reader_threads=1,
        writer_threads=1,
    )
    total = (block_kib << 10) * 5 + extra_bytes
    server = RdmaMiddleware(tb.dst, tb.dst_dev, tb.cm, c)
    sink = CollectingSink(tb.dst)
    server.serve(4000, sink)
    client = RdmaMiddleware(tb.src, tb.src_dev, tb.cm, c)
    done = client.transfer(tb.dst_dev, 4000, PatternSource(tb.src), total)
    tb.engine.run()
    assert done.triggered and done.ok
    outcome = done.value
    assert sink.bytes_written == total
    assert [h.seq for h, _ in sink.deliveries] == list(range(outcome.blocks))
    assert outcome.rnr_naks == 0
