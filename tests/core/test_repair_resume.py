"""Integrity, selective block repair, and session resume, end to end.

The robustness matrix: every scenario must either complete byte-exact
(with the repair/resume machinery visibly exercised) or abort with a
typed error, and the middleware must leak nothing — including the new
restart-marker state, which must never outlive its session.

All scenarios run under the chaos harness with fixed seeds; crash and
flap instants are scheduled (not drawn), so the same plan replays the
same failure at the same simulated time.
"""

import pytest

from repro.core import ProtocolConfig
from repro.faults import FaultPlan, run_chaos

SEEDS = [0, 1]


def cfg(**over):
    base = dict(
        block_size=256 * 1024,
        num_channels=2,
        source_blocks=8,
        sink_blocks=8,
    )
    base.update(over)
    return ProtocolConfig(**base)


def chaos(plan, total=16 << 20, **kw):
    over = {
        k: kw.pop(k)
        for k in list(kw)
        if k in ("num_channels", "block_repair", "session_resume", "checksum_blocks")
    }
    return run_chaos(
        "roce-lan", total_bytes=total, plan=plan, config=cfg(**over), **kw
    )


# -- plan validation for the new fault classes --------------------------------------
def test_plan_validates_new_fault_fields():
    with pytest.raises(ValueError):
        FaultPlan(payload_corrupt_rate=1.5)
    with pytest.raises(ValueError):
        FaultPlan(payload_corrupt_rate=-0.1)
    with pytest.raises(ValueError):
        FaultPlan(sink_crashes=(-1.0,))
    with pytest.raises(ValueError):
        FaultPlan(source_crashes=(-0.5,))
    with pytest.raises(ValueError):
        FaultPlan(qp_kills=((1.0, -1),))
    assert FaultPlan(payload_corrupt_rate=0.1).any_faults
    assert FaultPlan(sink_crashes=(1.0,)).any_faults
    assert FaultPlan(source_crashes=(1.0,)).any_faults
    assert FaultPlan(qp_kills=((1.0, 0),)).any_faults


# -- 1: corrupted blocks are detected and selectively re-sent -----------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_corrupt_blocks_nacked_and_repaired_byte_exact(seed):
    r = chaos(FaultPlan(seed=seed, payload_corrupt_rate=0.05))
    assert r.completed and r.byte_exact
    assert r.checksum_mismatches > 0
    # Every detected mismatch was repaired by exactly one NACK re-send.
    assert r.repairs == r.checksum_mismatches
    assert r.markers_sent > 0
    assert r.resume_attempts_used == 0
    assert r.leaks == ()
    assert r.clean


@pytest.mark.parametrize("seed", SEEDS)
def test_repair_disabled_makes_corruption_a_typed_abort(seed):
    """Without BLOCK_NACK repair the same corruption must be fatal and
    typed — never silently delivered garbage."""
    r = chaos(
        FaultPlan(seed=seed, payload_corrupt_rate=0.08),
        block_repair=False,
    )
    assert not r.completed
    assert r.error is not None
    assert r.checksum_mismatches > 0
    assert r.repairs == 0
    assert r.leaks == ()
    assert r.clean


# -- 2: a link flap longer than the retry budget, survived by SESSION_RESUME --------
@pytest.mark.parametrize("seed", SEEDS)
def test_resume_after_flap_exceeding_retry_budget(seed):
    """A 30 s outage dwarfs the ~16 s control retry budget: the first
    incarnation must die with a typed error, and the resumed one must
    re-send only the suffix past the sink's restart marker."""
    total = 16 << 20
    r = chaos(
        FaultPlan(seed=seed, link_flaps=((0.002, 30.0),)),
        total=total,
        resume_attempts=3,
        resume_backoff=35.0,
        horizon=600.0,
    )
    assert r.completed and r.byte_exact
    assert r.resume_attempts_used >= 1
    assert r.resumed_from > 0
    # Strictly fewer bytes on the wire than a full restart would push.
    restart_floor = total + r.resumed_from * (256 * 1024)
    assert r.data_bytes_sent < restart_floor
    assert r.leaks == ()
    assert r.clean


# -- 3: sink crash with parked out-of-order blocks, then resume ---------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_resume_after_sink_crash_byte_exact(seed):
    """The sink dies mid-transfer with out-of-order blocks parked past
    the written prefix; the resumed session re-sends from the restart
    marker and the final file is still byte-exact (overlap allowed, but
    every duplicate must be identical)."""
    r = chaos(
        FaultPlan(seed=seed, sink_crashes=(0.0015,)),
        resume_attempts=3,
        resume_backoff=0.5,
        horizon=120.0,
    )
    assert r.sink_crashes_fired == 1
    assert r.completed and r.byte_exact
    assert r.resume_attempts_used >= 1
    assert r.leaks == ()
    assert r.clean


@pytest.mark.parametrize("seed", SEEDS)
def test_sink_crash_without_resume_is_a_typed_abort(seed):
    """No resume budget: the marker watchdog (or crash notification)
    must turn the wedged repair-hold into a typed abort, bounded by the
    retry budget — never a silent deadlock to the horizon."""
    r = chaos(
        FaultPlan(seed=seed, sink_crashes=(0.0015,)),
        horizon=120.0,
    )
    assert not r.completed
    assert r.error is not None
    assert r.sim_time < 60.0
    assert r.leaks == ()
    assert r.clean


@pytest.mark.parametrize("seed", SEEDS)
def test_resume_after_source_crash_byte_exact(seed):
    r = chaos(
        FaultPlan(seed=seed, source_crashes=(0.0015,)),
        resume_attempts=3,
        resume_backoff=0.5,
        horizon=120.0,
    )
    assert r.source_crashes_fired == 1
    assert r.completed and r.byte_exact
    assert r.resume_attempts_used >= 1
    assert r.leaks == ()
    assert r.clean


# -- 4: data-channel failover -------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_qp_kill_fails_over_to_surviving_channel(seed):
    """One of two data QPs dies mid-transfer: in-flight blocks are
    redistributed onto the survivor and the transfer completes without
    needing a session resume."""
    r = chaos(FaultPlan(seed=seed, qp_kills=((0.0015, 0),)))
    assert r.qp_kills_fired == 1
    assert r.completed and r.byte_exact
    assert r.resume_attempts_used == 0
    assert r.leaks == ()
    assert r.clean


@pytest.mark.parametrize("seed", SEEDS)
def test_combined_corruption_crash_and_resume(seed):
    """The kitchen sink: bit-rot plus a sink crash, survived by NACK
    repair plus SESSION_RESUME, still byte-exact and leak-free."""
    r = chaos(
        FaultPlan(seed=seed, payload_corrupt_rate=0.03, sink_crashes=(0.0015,)),
        resume_attempts=3,
        resume_backoff=0.5,
        horizon=120.0,
    )
    assert r.sink_crashes_fired == 1
    assert r.completed and r.byte_exact
    assert r.resume_attempts_used >= 1
    assert r.leaks == ()
    assert r.clean


def test_same_seed_replays_resume_run_identically():
    plan = FaultPlan(seed=7, payload_corrupt_rate=0.04, sink_crashes=(0.0015,))
    kw = dict(resume_attempts=3, resume_backoff=0.5, horizon=120.0)
    a, b = chaos(plan, **kw), chaos(plan, **kw)
    assert (
        a.checksum_mismatches,
        a.repairs,
        a.resumed_from,
        a.data_bytes_sent,
        a.sim_time,
    ) == (
        b.checksum_mismatches,
        b.repairs,
        b.resumed_from,
        b.data_bytes_sent,
        b.sim_time,
    )
