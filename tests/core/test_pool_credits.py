"""Block pools and the credit flow-control policies."""

import pytest

from repro.core.blocks import SinkBlockState
from repro.core.credits import Credit, CreditGranter, CreditLedger
from repro.core.messages import HEADER_BYTES
from repro.core.pool import BlockPool
from tests.conftest import make_fabric


def sink_pool(f, count=8, block_size=4096):
    pd = f.dev_b.alloc_pd()
    return BlockPool.build_sink(f.b, pd, count, block_size)


# -- pool ------------------------------------------------------------------------
def test_source_pool_registers_blocks():
    f = make_fabric()
    pd = f.dev_a.alloc_pd()
    pool = BlockPool.build_source(f.a, pd, 4, 8192)
    assert len(pool) == 4
    assert pool.free_count == 4
    blk = pool.try_get_free_blk()
    assert blk.mr.buffer.size == 8192 + HEADER_BYTES
    assert pd.lookup_lkey(blk.mr.lkey) is blk.mr


def test_sink_pool_blocks_remote_writable():
    f = make_fabric()
    pool = sink_pool(f)
    blk = pool.try_get_free_blk()
    blk.mr.check_remote(blk.mr.buffer.addr, 4096 + HEADER_BYTES, write=True)


def test_pool_get_blocks_when_empty():
    f = make_fabric()
    pd = f.dev_a.alloc_pd()
    pool = BlockPool.build_source(f.a, pd, 1, 4096)
    first = pool.try_get_free_blk()
    assert pool.try_get_free_blk() is None
    waits = []

    def waiter(env):
        blk = yield pool.get_free_blk()
        waits.append((env.now, blk.block_id))

    def returner(env):
        yield env.timeout(1.0)
        pool.put_free_blk(first)

    f.engine.process(waiter(f.engine))
    f.engine.process(returner(f.engine))
    f.engine.run()
    assert waits == [(1.0, first.block_id)]


def test_pool_rejects_foreign_block():
    f = make_fabric()
    pd = f.dev_a.alloc_pd()
    pool_a = BlockPool.build_source(f.a, pd, 2, 4096)
    pool_b = BlockPool.build_source(f.a, pd, 2, 4096)
    foreign = pool_b.try_get_free_blk()
    foreign.block_id = 99
    with pytest.raises(KeyError):
        pool_a.put_free_blk(foreign)


def test_pool_by_id():
    f = make_fabric()
    pool = sink_pool(f, count=3)
    assert pool.by_id(2).block_id == 2
    with pytest.raises(KeyError):
        pool.by_id(17)


# -- ledger -----------------------------------------------------------------------
def test_ledger_deposit_and_acquire():
    f = make_fabric()
    ledger = CreditLedger(f.engine)
    got = []

    def taker(env):
        credit = yield ledger.acquire()
        got.append(credit)

    f.engine.process(taker(f.engine))
    credit = Credit(block_id=0, addr=0x1000, rkey=0xABCD)
    ledger.deposit([credit])
    f.engine.run()
    assert got == [credit]
    assert ledger.total_received == 1
    assert ledger.balance == 0


def test_ledger_peak_tracking():
    f = make_fabric()
    ledger = CreditLedger(f.engine)
    ledger.deposit([Credit(i, i, i) for i in range(5)])
    assert ledger.peak_balance == 5
    f.engine.run()


# -- granter ----------------------------------------------------------------------
def test_initial_grant_advertises_blocks():
    f = make_fabric()
    pool = sink_pool(f, count=8)
    granter = CreditGranter(pool, grant_ratio=2, proactive=True)
    credits = granter.initial_grant(3)
    assert len(credits) == 3
    assert pool.free_count == 5
    for c in credits:
        assert pool.by_id(c.block_id).state is SinkBlockState.WAITING
        assert c.rkey == pool.by_id(c.block_id).mr.rkey


def test_initial_grant_disabled_when_on_demand():
    f = make_fabric()
    granter = CreditGranter(sink_pool(f), proactive=False)
    assert granter.initial_grant(3) == []


def test_block_done_grants_up_to_ratio():
    f = make_fabric()
    pool = sink_pool(f, count=8)
    granter = CreditGranter(pool, grant_ratio=2, proactive=True)
    assert len(granter.on_block_done()) == 2
    assert len(granter.on_block_done()) == 2


def test_block_done_with_empty_pool_grants_nothing():
    f = make_fabric()
    pool = sink_pool(f, count=2)
    granter = CreditGranter(pool, grant_ratio=2, proactive=True)
    granter.initial_grant(2)
    assert granter.on_block_done() == []  # ignored, per the paper


def test_request_records_debt_when_empty():
    f = make_fabric()
    pool = sink_pool(f, count=1)
    granter = CreditGranter(pool, grant_ratio=2, proactive=True)
    granter.initial_grant(1)
    assert granter.on_request() == []
    assert granter.pending_request
    # When a block frees, the debt is paid immediately.
    blk = pool.by_id(0)
    blk.finish(__import__("repro.core.messages", fromlist=["BlockHeader"]).BlockHeader(1, 0, 0, 64), None)
    blk.consume()
    pool.put_free_blk(blk)
    granted = granter.on_block_freed()
    assert len(granted) == 1
    assert not granter.pending_request


def test_on_demand_mode_only_answers_requests():
    f = make_fabric()
    pool = sink_pool(f, count=4)
    granter = CreditGranter(pool, grant_ratio=2, proactive=False)
    assert granter.on_block_done() == []
    assert granter.on_block_freed() == []
    assert len(granter.on_request()) == 2


def test_proactive_recycles_freed_blocks():
    f = make_fabric()
    pool = sink_pool(f, count=2)
    granter = CreditGranter(pool, grant_ratio=2, proactive=True)
    granter.initial_grant(2)
    blk = pool.by_id(0)
    from repro.core.messages import BlockHeader

    blk.finish(BlockHeader(1, 0, 0, 64), None)
    blk.consume()
    pool.put_free_blk(blk)
    granted = granter.on_block_freed()
    assert [c.block_id for c in granted] == [0]


def test_exponential_ramp_doubles_credits():
    """grant_ratio=2 yields the slow-start-like doubling of §IV-C."""
    f = make_fabric()
    pool = sink_pool(f, count=64)
    granter = CreditGranter(pool, grant_ratio=2, proactive=True)
    outstanding = len(granter.initial_grant(2))
    for _round in range(3):
        granted = 0
        for _ in range(outstanding):
            granted += len(granter.on_block_done())
        outstanding = granted
    # 2 -> 4 -> 8 -> 16
    assert outstanding == 16


def test_granter_validation():
    f = make_fabric()
    with pytest.raises(ValueError):
        CreditGranter(sink_pool(f), grant_ratio=0)


def test_timed_source_pool_charges_registration():
    """build_source_timed pays pinning cost per block (setup-time model)."""
    f = make_fabric()
    pd = f.dev_a.alloc_pd()
    thread = f.a.thread("setup")

    def build(env):
        pool = yield env.process(
            BlockPool.build_source_timed(f.a, pd, thread, 4, 64 * 1024)
        )
        return pool

    p = f.engine.process(build(f.engine))
    f.engine.run()
    pool = p.value
    assert len(pool) == 4
    assert f.a.cpu.busy_seconds("app") > 0
    # Registration cost scales with pages: 4 blocks x (base + pages*per_page).
    profile = f.dev_a.arch_profile
    pages = pool.try_get_free_blk().mr.buffer.pages
    expected = 4 * (profile.reg_mr_base_seconds + pages * profile.reg_mr_page_seconds)
    assert f.a.cpu.busy_seconds("app") == pytest.approx(expected)
