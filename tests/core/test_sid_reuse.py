"""Session-id reuse across link incarnations: the marker-epoch guard.

A sink keeps a reclaimed session's restart marker around so a later
SESSION_RESUME can re-attach.  But a session id may also be *legitimately
reused* by a fresh incarnation (back-to-back transfers to the same
destination path on one link).  The fresh SESSION_REQ must wipe the
predecessor's marker state: a stale ``_marker_upto`` overstates the new
incarnation's durable prefix, and a resume anchored on it silently skips
blocks the new incarnation never delivered.
"""

from repro.apps.io import CollectingSink, PatternSource
from repro.core import ProtocolConfig, RdmaMiddleware
from repro.testbeds import roce_lan

BS = 256 * 1024


def cfg(**over):
    base = dict(
        block_size=BS,
        num_channels=2,
        source_blocks=12,
        sink_blocks=12,
        heartbeats=False,
        session_idle_timeout=0.5,
        idle_rto_multiplier=4.0,
    )
    base.update(over)
    return ProtocolConfig(**base)


def wire(tb, c):
    server = RdmaMiddleware(tb.dst, tb.dst_dev, tb.cm, c)
    sink = CollectingSink(tb.dst)
    server.serve(4000, sink)
    client = RdmaMiddleware(tb.src, tb.src_dev, tb.cm, c)
    return server, sink, client


def test_fresh_incarnation_does_not_inherit_stale_restart_marker():
    """Incarnation 1 (8 blocks, sid 7) dies mid-flight and is GC-reclaimed,
    leaving its restart marker behind (that is the resume anchor, by
    design).  Incarnation 2 reuses sid 7 for a *smaller* 4-block file,
    dies right after negotiation, and resumes.  Pre-guard, the resume
    re-attached at the stale marker and skipped blocks incarnation 2
    never sent; the delivered sequence set must be complete."""
    tb = roce_lan()
    c = cfg()
    server, sink, client = wire(tb, c)

    def driver(env):
        link = yield client.open_link(tb.dst_dev, 4000, c)
        se = server.sink_engines[link._client_id]

        # Incarnation 1: killed with a durable prefix behind the marker.
        ev1 = link.transfer(PatternSource(tb.src), 8 * BS, session_id=7)
        yield env.timeout(4e-4)
        link.crash()
        ev1.defuse()

        # Idle GC reclaims sid 7 but keeps the marker as a resume anchor.
        yield env.timeout(3.0)
        assert 7 not in se._expected_bytes
        stale = se._marker_upto.get(7, 0)
        assert stale >= 1, "precondition: incarnation 1 left a stale marker"

        # Incarnation 2 reuses sid 7 and dies before any block lands.
        before = len(sink.deliveries)
        ev2 = link.transfer(PatternSource(tb.src), 4 * BS, session_id=7)
        yield env.timeout(1.2e-4)
        link.crash()
        ev2.defuse()
        delivered = len(sink.deliveries) - before
        assert delivered < stale, (
            "precondition: incarnation 2 delivered less than the stale marker"
        )

        yield env.timeout(0.05)
        res = yield link.resume(PatternSource(tb.src), 4 * BS, 7)
        # The resume point reflects THIS incarnation's progress, not the
        # dead predecessor's.
        assert res.start_seq <= delivered
        seqs = sorted({h.seq for h, _ in sink.deliveries[before:]
                       if h.session_id == 7})
        assert seqs == [0, 1, 2, 3]  # nothing silently skipped
        return True

    p = tb.engine.process(driver(tb.engine))
    tb.engine.run()
    assert p.ok and p.value


def test_reused_sid_after_clean_finish_is_a_fresh_session():
    """A sid whose previous incarnation finished cleanly starts over from
    scratch: full delivery, no inherited acks or markers."""
    tb = roce_lan()
    c = cfg()
    server, sink, client = wire(tb, c)

    def driver(env):
        link = yield client.open_link(tb.dst_dev, 4000, c)
        yield link.transfer(PatternSource(tb.src), 4 * BS, session_id=9)
        before = len(sink.deliveries)
        yield link.transfer(PatternSource(tb.src), 4 * BS, session_id=9)
        seqs = sorted(h.seq for h, _ in sink.deliveries[before:]
                      if h.session_id == 9)
        assert seqs == [0, 1, 2, 3]
        return True

    p = tb.engine.process(driver(tb.engine))
    tb.engine.run()
    assert p.ok and p.value
    assert sink.bytes_written == 8 * BS
