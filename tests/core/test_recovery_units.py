"""Unit tests for the recovery hardening: session retirement, the
same-credit re-send path, and on-demand grant debt."""

from repro.apps.io import CollectingSink, PatternSource
from repro.core import ProtocolConfig, RdmaMiddleware
from repro.core.credits import CreditGranter
from repro.core.pool import BlockPool
from repro.core.messages import BlockHeader
from repro.testbeds import roce_lan
from tests.conftest import make_fabric


def cfg(**over):
    base = dict(
        block_size=256 * 1024,
        num_channels=2,
        source_blocks=8,
        sink_blocks=8,
    )
    base.update(over)
    return ProtocolConfig(**base)


def make_pair(c, port=4000, injector=None):
    tb = roce_lan()
    server = RdmaMiddleware(tb.dst, tb.dst_dev, tb.cm, c)
    sink = CollectingSink(tb.dst)
    server.serve(port, sink)
    client = RdmaMiddleware(tb.src, tb.src_dev, tb.cm, c)
    return tb, client, sink


# -- satellite: jobs leave the table on DATASET_DONE_ACK ----------------------------
def test_ack_pops_job_and_session_id_can_be_reused():
    c = cfg()
    tb, client, sink = make_pair(c)
    holder = {}

    def _run():
        link = yield client.open_link(tb.dst_dev, 4000, c)
        holder["link"] = link
        job1 = yield link.transfer(PatternSource(tb.src), 2 << 20, 7)
        # Regression: the completed job must leave the session table at
        # ACK time, or the table grows forever on a long-lived link (and
        # the id can never be reused).
        assert 7 not in link.jobs
        job2 = yield link.transfer(PatternSource(tb.src), 2 << 20, 7)
        holder["jobs"] = (job1, job2)

    tb.engine.process(_run())
    tb.engine.run()
    link = holder["link"]
    job1, job2 = holder["jobs"]
    assert link.jobs == {}
    assert job1.completed_blocks == job1.total_blocks
    assert job2.completed_blocks == job2.total_blocks
    # Both sessions delivered in full (16 blocks of 256K across 2 runs).
    assert len(sink.deliveries) == job1.total_blocks + job2.total_blocks
    assert link.pool.free_count == len(link.pool)


# -- satellite: failed WRITE reposts with the SAME credit ---------------------------
class FailFirstPost:
    """Fail exactly the first RDMA WRITE ever posted; record every post."""

    def __init__(self):
        self.posts = []  # (block seq, wr_id, remote_addr)
        self.tripped = False

    def __call__(self, wr) -> bool:
        self.posts.append((wr.payload.header.seq, wr.wr_id, wr.remote_addr))
        if not self.tripped:
            self.tripped = True
            return True
        return False


def test_failed_write_reposts_same_credit_new_wr_id():
    c = cfg()
    tb, client, _sink = make_pair(c)
    injector = FailFirstPost()
    holder = {}

    def _run():
        link = yield client.open_link(tb.dst_dev, 4000, c, injector)
        holder["job"] = yield link.transfer(PatternSource(tb.src), 4 << 20, 1)

    tb.engine.process(_run())
    tb.engine.run()
    job = holder["job"]
    assert job.resends == 1
    failed_seq = injector.posts[0][0]
    attempts = [p for p in injector.posts if p[0] == failed_seq]
    assert len(attempts) == 2
    # Same credit: the retransmission targets the identical sink region
    # (routing the credit back through the ledger would let other blocks
    # steal it and deadlock a fully-advertised pool)...
    assert attempts[0][2] == attempts[1][2]
    # ...but under a fresh wr_id, so the completion routes unambiguously.
    assert attempts[0][1] != attempts[1][1]


def test_block_latencies_exclude_failed_completions():
    """Latency bookkeeping must only sample successful WRITEs — a faulted
    completion is not a delivery and would skew the percentiles."""
    c = cfg()
    tb, client, _sink = make_pair(c)
    injector = FailFirstPost()
    holder = {}

    def _run():
        link = yield client.open_link(tb.dst_dev, 4000, c, injector)
        holder["job"] = yield link.transfer(PatternSource(tb.src), 4 << 20, 1)

    tb.engine.process(_run())
    tb.engine.run()
    job = holder["job"]
    assert job.resends == 1
    # One successful completion per block — the faulted attempt is absent.
    assert len(job.block_latencies) == job.total_blocks
    assert all(lat > 0 for lat in job.block_latencies)


# -- satellite: on-demand granter pays its pending_request debt ---------------------
def test_on_demand_block_freed_satisfies_pending_request():
    f = make_fabric()
    pd = f.dev_b.alloc_pd()
    pool = BlockPool.build_sink(f.b, pd, 2, 4096)
    granter = CreditGranter(pool, grant_ratio=2, proactive=False)
    assert len(granter.on_request()) == 2  # drains the pool
    assert granter.on_request() == []
    assert granter.pending_request
    # A consumer frees a block: the debt must be paid immediately even
    # though the policy is on-demand.
    blk = pool.by_id(0)
    blk.finish(BlockHeader(1, 0, 0, 64), None)
    blk.consume()
    pool.put_free_blk(blk)
    granted = granter.on_block_freed()
    assert [cr.block_id for cr in granted] == [0]
    assert not granter.pending_request
    # No outstanding debt and on-demand policy: freeing more blocks grants
    # nothing unsolicited.
    blk1 = pool.by_id(1)
    blk1.finish(BlockHeader(1, 1, 0, 64), None)
    blk1.consume()
    pool.put_free_blk(blk1)
    assert granter.on_block_freed() == []
