"""Wire formats and out-of-order reassembly."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.messages import (
    CTRL_MSG_BYTES,
    HEADER_BYTES,
    BlockHeader,
    ControlMessage,
    CtrlType,
)
from repro.core.reassembly import ReassemblyBuffer


def hdr(seq, sid=1, length=4096):
    return BlockHeader(session_id=sid, seq=seq, offset=seq * length, length=length)


# -- messages ---------------------------------------------------------------------
def test_control_message_wire_size():
    msg = ControlMessage(CtrlType.BLOCK_DONE, 1, (0, None))
    assert msg.wire_bytes == CTRL_MSG_BYTES


def test_header_wire_size_includes_payload():
    h = hdr(0, length=1 << 20)
    assert h.wire_bytes == HEADER_BYTES + (1 << 20)


def test_header_field_ranges():
    BlockHeader(session_id=2**32 - 1, seq=2**32 - 1, offset=2**64 - 1, length=2**32 - 1)
    with pytest.raises(ValueError):
        BlockHeader(session_id=2**32, seq=0, offset=0, length=0)
    with pytest.raises(ValueError):
        BlockHeader(session_id=0, seq=2**32, offset=0, length=0)
    with pytest.raises(ValueError):
        BlockHeader(session_id=0, seq=0, offset=2**64, length=0)
    with pytest.raises(ValueError):
        BlockHeader(session_id=0, seq=0, offset=0, length=-1)


def test_header_key():
    assert hdr(5, sid=3).key() == (3, 5)


# -- reassembly -----------------------------------------------------------------------
def test_in_order_stream_passes_through():
    r = ReassemblyBuffer()
    for seq in range(5):
        out = r.push(hdr(seq), f"p{seq}")
        assert [h.seq for h, _ in out] == [seq]


def test_out_of_order_held_and_released():
    r = ReassemblyBuffer()
    assert r.push(hdr(2), "c") == []
    assert r.push(hdr(1), "b") == []
    out = r.push(hdr(0), "a")
    assert [(h.seq, p) for h, p in out] == [(0, "a"), (1, "b"), (2, "c")]
    assert r.pending(1) == 0


def test_sessions_are_independent():
    r = ReassemblyBuffer()
    r.push(hdr(1, sid=7), "x")
    out = r.push(hdr(0, sid=8), "y")
    assert [(h.session_id, h.seq) for h, _ in out] == [(8, 0)]
    assert r.pending(7) == 1


def test_duplicates_dropped_and_counted():
    r = ReassemblyBuffer()
    r.push(hdr(0), "a")
    assert r.push(hdr(0), "a-again") == []
    assert r.duplicates == 1
    r.push(hdr(2), "c")
    assert r.push(hdr(2), "c-again") == []
    assert r.duplicates == 2


def test_finish_session_discards_stranded():
    r = ReassemblyBuffer()
    r.push(hdr(3), "x")
    r.push(hdr(5), "y")
    assert r.finish_session(1) == 2
    assert r.pending(1) == 0
    assert r.next_seq(1) == 0  # state reset


def test_max_parked_tracks_high_water():
    r = ReassemblyBuffer()
    for seq in (4, 3, 2, 1):
        r.push(hdr(seq), None)
    assert r.max_parked == 4


@settings(max_examples=100, deadline=None)
@given(perm=st.permutations(list(range(12))))
def test_any_permutation_delivers_in_order(perm):
    """The sink's core guarantee: whatever the arrival order, the
    application sees sequence numbers 0..n-1 exactly once, sorted."""
    r = ReassemblyBuffer()
    delivered = []
    for seq in perm:
        delivered.extend(h.seq for h, _ in r.push(hdr(seq), None))
    assert delivered == sorted(perm)


@settings(max_examples=50, deadline=None)
@given(
    arrivals=st.lists(st.integers(min_value=0, max_value=10), min_size=1, max_size=60)
)
def test_duplicates_never_delivered_twice(arrivals):
    r = ReassemblyBuffer()
    delivered = []
    for seq in arrivals:
        delivered.extend(h.seq for h, _ in r.push(hdr(seq), None))
    assert len(delivered) == len(set(delivered))
    assert delivered == sorted(delivered)
