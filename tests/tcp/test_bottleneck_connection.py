"""The shared bottleneck and TCP connections (pipe + fluid modes)."""

import pytest

from repro.network import back_to_back
from repro.sim import Engine
from repro.tcp import Bottleneck, TcpConnection, TcpMode
from tests.conftest import make_host


def _hosts(engine):
    return make_host(engine, "src", nic_gbps=10), make_host(engine, "dst", nic_gbps=10)


def _fluid_conn(engine, src, dst, bn, **kw):
    kw.setdefault("sndbuf", 64 << 20)
    kw.setdefault("rcvbuf", 64 << 20)
    return TcpConnection(
        engine, src, dst, TcpMode.FLUID, bottleneck=bn, **kw
    )


# -- Bottleneck ---------------------------------------------------------------
def test_single_flow_reaches_capacity(engine):
    src, dst = _hosts(engine)
    bn = Bottleneck(engine, 1.25e9, rtt=0.05)
    conn = _fluid_conn(engine, src, dst, bn)
    total = 2 << 30

    def sender(env):
        thread = src.thread("s")
        yield from conn.send(thread, total)

    def receiver(env):
        thread = dst.thread("r")
        yield from conn.recv(thread, total)
        return env.now

    engine.process(sender(engine))
    p = engine.process(receiver(engine))
    engine.run()
    assert p.ok
    gbps = total * 8 / p.value / 1e9
    assert gbps > 7.0  # most of the 10G pipe after slow start


def test_round_loop_parks_when_idle(engine):
    src, dst = _hosts(engine)
    bn = Bottleneck(engine, 1.25e9, rtt=0.05)
    conn = _fluid_conn(engine, src, dst, bn)

    def sender(env):
        thread = src.thread("s")
        yield from conn.send(thread, 1 << 20)

    def receiver(env):
        thread = dst.thread("r")
        yield from conn.recv(thread, 1 << 20)

    engine.process(sender(engine))
    engine.process(receiver(engine))
    engine.run()  # must terminate — the loop parks itself
    assert not bn._running
    assert engine.now < 10.0


def test_overflow_triggers_marked_losses(engine):
    src, dst = _hosts(engine)
    # Tiny buffer: slow-start overshoot must overflow it.
    bn = Bottleneck(engine, 1.25e9, rtt=0.05, buffer_bytes=1 << 20)
    conn = _fluid_conn(engine, src, dst, bn, sndbuf=512 << 20, rcvbuf=512 << 20)
    total = 1 << 30

    def sender(env):
        thread = src.thread("s")
        yield from conn.send(thread, total)

    def receiver(env):
        thread = dst.thread("r")
        yield from conn.recv(thread, total)

    engine.process(sender(engine))
    engine.process(receiver(engine))
    engine.run()
    assert conn.cc.losses >= 1
    assert bn.bytes_dropped.total > 0


def test_two_flows_share_capacity(engine):
    src, dst = _hosts(engine)
    bn = Bottleneck(engine, 1.25e9, rtt=0.05)
    total = 2 << 30  # long enough that slow start amortises
    conns = [_fluid_conn(engine, src, dst, bn) for _ in range(2)]
    finish = []

    def sender(env, conn):
        thread = src.thread("s")
        yield from conn.send(thread, total)

    def receiver(env, conn):
        thread = dst.thread("r")
        yield from conn.recv(thread, total)
        finish.append(env.now)

    for conn in conns:
        engine.process(sender(engine, conn))
        engine.process(receiver(engine, conn))
    engine.run()
    agg_gbps = 2 * total * 8 / max(finish) / 1e9
    assert agg_gbps > 7.0
    assert agg_gbps <= 10.01


def test_random_loss_reduces_single_flow_goodput(engine):
    src, dst = _hosts(engine)
    total = 4 << 30

    def run(loss):
        eng = Engine()
        s, d = _hosts(eng)
        bn = Bottleneck(eng, 1.25e9, rtt=0.05, random_loss_per_byte=loss)
        conn = _fluid_conn(eng, s, d, bn)

        def sender(env):
            yield from conn.send(s.thread("s"), total)

        def receiver(env):
            yield from conn.recv(d.thread("r"), total)
            return env.now

        eng.process(sender(eng))
        p = eng.process(receiver(eng))
        eng.run()
        return total * 8 / p.value / 1e9

    assert run(2e-9) < run(0.0) - 0.5


def test_bottleneck_validation(engine):
    with pytest.raises(ValueError):
        Bottleneck(engine, 0, rtt=0.05)
    with pytest.raises(ValueError):
        Bottleneck(engine, 1e9, rtt=0)
    with pytest.raises(ValueError):
        Bottleneck(engine, 1e9, rtt=0.05, random_loss_per_byte=-1)


# -- pipe mode ---------------------------------------------------------------------
def test_pipe_mode_throughput_and_cpu(engine):
    src, dst = _hosts(engine)
    duplex = back_to_back(engine, 10.0, rtt=50e-6)
    conn = TcpConnection(
        engine, src, dst, TcpMode.PIPE, path=duplex, sndbuf=8 << 20, rcvbuf=8 << 20
    )
    total = 256 << 20

    def sender(env):
        thread = src.thread("s")
        remaining = total
        while remaining:
            chunk = min(1 << 20, remaining)
            yield from conn.send(thread, chunk)
            remaining -= chunk

    def receiver(env):
        thread = dst.thread("r")
        remaining = total
        while remaining:
            chunk = min(1 << 20, remaining)
            yield from conn.recv(thread, chunk)
            remaining -= chunk
        return env.now

    engine.process(sender(engine))
    p = engine.process(receiver(engine))
    engine.run()
    gbps = total * 8 / p.value / 1e9
    assert 8.0 < gbps <= 10.01
    # Copies charged to app threads, kernel charged in background.
    assert src.cpu.busy_seconds("app") > 0
    assert src.cpu.busy_seconds("kernel") > 0
    assert dst.cpu.busy_seconds("kernel") > 0


def test_pipe_mode_backpressure(engine):
    """A tiny send buffer blocks the sender until the pipe drains."""
    src, dst = _hosts(engine)
    duplex = back_to_back(engine, 10.0, rtt=50e-6)
    conn = TcpConnection(
        engine, src, dst, TcpMode.PIPE, path=duplex, sndbuf=1 << 20, rcvbuf=1 << 20
    )
    sent_times = []

    def sender(env):
        thread = src.thread("s")
        for _ in range(8):
            yield from conn.send(thread, 1 << 20)
            sent_times.append(env.now)

    def receiver(env):
        thread = dst.thread("r")
        yield from conn.recv(thread, 8 << 20)

    engine.process(sender(engine))
    engine.process(receiver(engine))
    engine.run()
    # With a 1 MB buffer each subsequent send must wait ~one serialisation.
    serialisation = (1 << 20) / (10e9 / 8)
    assert sent_times[-1] >= 5 * serialisation


def test_mode_requirements(engine):
    src, dst = _hosts(engine)
    with pytest.raises(ValueError):
        TcpConnection(engine, src, dst, TcpMode.PIPE)  # no path
    with pytest.raises(ValueError):
        TcpConnection(engine, src, dst, TcpMode.FLUID)  # no bottleneck


def test_send_after_close_rejected(engine):
    src, dst = _hosts(engine)
    bn = Bottleneck(engine, 1.25e9, rtt=0.05)
    conn = _fluid_conn(engine, src, dst, bn)
    conn.close()
    with pytest.raises(RuntimeError):
        list(conn.send(src.thread("s"), 10))
    assert conn not in bn._flows


@pytest.mark.parametrize("cc_name", ["reno", "cubic", "bic", "htcp"])
def test_fluid_conserves_bytes_under_loss(engine, cc_name):
    """Conservation invariant: every byte written is eventually read,
    exactly once, regardless of congestion algorithm and loss pattern."""
    src, dst = _hosts(engine)
    bn = Bottleneck(
        engine, 1.25e9, rtt=0.05,
        buffer_bytes=8 << 20,  # small buffer: force overflow losses
        random_loss_per_byte=2e-9,
    )
    conn = _fluid_conn(engine, src, dst, bn, cc=cc_name,
                       sndbuf=128 << 20, rcvbuf=128 << 20)
    total = 1 << 30

    def sender(env):
        yield from conn.send(src.thread("s"), total)

    def receiver(env):
        yield from conn.recv(dst.thread("r"), total)
        return env.now

    engine.process(sender(engine))
    p = engine.process(receiver(engine))
    engine.run()
    assert p.ok, f"{cc_name}: transfer stalled"
    assert conn.cc.losses > 0  # the run actually saw congestion
    # Nothing left in flight, nothing double-delivered.
    assert conn.unsent_bytes == pytest.approx(0.0, abs=1.0)
    assert conn.unread_bytes == pytest.approx(0.0, abs=1.0)
    assert conn.bytes_delivered.total == pytest.approx(total, abs=1.0)


def test_many_flows_conserve_and_share(engine):
    """Eight flows under overflow losses: all complete, total served
    equals total offered, aggregate stays within capacity."""
    src, dst = _hosts(engine)
    bn = Bottleneck(engine, 1.25e9, rtt=0.05, buffer_bytes=16 << 20)
    per_flow = 256 << 20
    conns = [_fluid_conn(engine, src, dst, bn) for _ in range(8)]
    finish = []

    def sender(env, c):
        yield from c.send(src.thread("s"), per_flow)

    def receiver(env, c):
        yield from c.recv(dst.thread("r"), per_flow)
        finish.append(env.now)

    for c in conns:
        engine.process(sender(engine, c))
        engine.process(receiver(engine, c))
    engine.run()
    assert len(finish) == 8
    agg_gbps = 8 * per_flow * 8 / max(finish) / 1e9
    assert agg_gbps <= 10.01
    assert sum(c.bytes_delivered.total for c in conns) == pytest.approx(
        8 * per_flow, abs=8.0
    )
