"""Congestion-control algorithms: unit behaviour + hypothesis invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tcp import Bic, Cubic, HTcp, Reno, make_congestion_control
from repro.tcp.congestion import INITIAL_CWND_SEGMENTS

MSS = 8948
RTT = 0.05


def drive_rounds(cc, rounds, now=0.0, rtt=RTT, lose_at=()):
    """Advance a CC through full-window acked rounds; returns cwnd trace."""
    trace = []
    for i in range(rounds):
        now += rtt
        if i in lose_at:
            cc.on_loss(now)
        else:
            cc.on_round_acked(cc.cwnd_bytes, now, rtt)
        trace.append(cc.cwnd_seg)
    return trace


# -- factory -----------------------------------------------------------------
def test_factory_known_algorithms():
    for name, cls in (("reno", Reno), ("cubic", Cubic), ("bic", Bic), ("htcp", HTcp)):
        cc = make_congestion_control(name, mss=MSS)
        assert isinstance(cc, cls)
        assert cc.mss == MSS


def test_factory_unknown_rejected():
    with pytest.raises(ValueError):
        make_congestion_control("vegas")


def test_initial_window():
    assert Reno().cwnd_seg == INITIAL_CWND_SEGMENTS


# -- slow start -------------------------------------------------------------------
@pytest.mark.parametrize("cls", [Reno, Cubic, Bic, HTcp])
def test_slow_start_doubles_per_round(cls):
    cc = cls(mss=MSS)
    w0 = cc.cwnd_seg
    cc.on_round_acked(cc.cwnd_bytes, 0.05, RTT)
    assert cc.cwnd_seg == pytest.approx(2 * w0)


@pytest.mark.parametrize("cls", [Reno, Cubic, Bic, HTcp])
def test_loss_ends_slow_start(cls):
    cc = cls(mss=MSS)
    drive_rounds(cc, 5)
    cc.on_loss(1.0)
    assert not cc.in_slow_start
    assert cc.ssthresh_seg < float("inf")


# -- Reno --------------------------------------------------------------------------
def test_reno_additive_increase():
    cc = Reno(mss=MSS)
    cc.ssthresh_seg = 10.0
    cc.cwnd_seg = 10.0
    cc.on_round_acked(cc.cwnd_bytes, 1.0, RTT)
    assert cc.cwnd_seg == pytest.approx(11.0)


def test_reno_halves_on_loss():
    cc = Reno(mss=MSS)
    cc.cwnd_seg = 100.0
    cc.ssthresh_seg = 50.0
    cc.on_loss(1.0)
    assert cc.cwnd_seg == pytest.approx(50.0)


# -- CUBIC ------------------------------------------------------------------------
def test_cubic_backoff_factor():
    cc = Cubic(mss=MSS)
    cc.cwnd_seg = 1000.0
    cc.ssthresh_seg = 500.0
    cc.on_loss(10.0)
    assert cc.cwnd_seg == pytest.approx(700.0)
    assert cc.w_max == pytest.approx(1000.0)


def test_cubic_plateaus_near_wmax_then_probes():
    """The defining cubic shape: slow near W_max, fast far from it."""
    cc = Cubic(mss=MSS)
    cc.ssthresh_seg = 0.0  # force congestion avoidance
    cc.cwnd_seg = 1000.0
    cc.on_loss(0.0)
    trace = drive_rounds(cc, 400, now=0.0)
    w = cc.w_max
    # Growth rate near w_max is smaller than far beyond it.
    near = [b - a for a, b in zip(trace, trace[1:]) if 0.95 * w < b < 1.05 * w]
    far = [b - a for a, b in zip(trace, trace[1:]) if b > 1.3 * w]
    assert near and far
    assert max(near) < max(far)


def test_cubic_recovers_to_wmax():
    cc = Cubic(mss=MSS)
    cc.ssthresh_seg = 0.0
    cc.cwnd_seg = 1000.0
    cc.on_loss(0.0)
    drive_rounds(cc, 1000)
    assert cc.cwnd_seg > 1000.0


# -- BIC ----------------------------------------------------------------------------
def test_bic_binary_search_converges_to_wmax():
    cc = Bic(mss=MSS)
    cc.ssthresh_seg = 0.0
    cc.cwnd_seg = 1000.0
    cc.on_loss(0.0)  # w_max = 1000, cwnd = 800
    assert cc.cwnd_seg == pytest.approx(800.0)
    trace = drive_rounds(cc, 50)
    assert trace[-1] >= 999.0


def test_bic_increment_capped_by_smax():
    cc = Bic(mss=MSS)
    cc.ssthresh_seg = 0.0
    cc.cwnd_seg = 100.0
    cc.w_max = 10_000.0
    before = cc.cwnd_seg
    cc.on_round_acked(cc.cwnd_bytes, 1.0, RTT)
    assert cc.cwnd_seg - before <= Bic.S_MAX + 1e-9


def test_bic_fast_convergence_lowers_wmax():
    cc = Bic(mss=MSS)
    cc.ssthresh_seg = 0.0
    cc.cwnd_seg = 500.0
    cc.w_max = 1000.0  # still climbing back when hit again
    cc.on_loss(1.0)
    assert cc.w_max < 500.0 * (2 - Bic.BETA) / 2 + 1e-9


# -- H-TCP ------------------------------------------------------------------------
def test_htcp_alpha_grows_with_time_since_loss():
    cc = HTcp(mss=MSS)
    cc.ssthresh_seg = 0.0
    cc.cwnd_seg = 100.0
    cc.on_loss(0.0)
    w = cc.cwnd_seg
    early = drive_rounds(cc, 10, now=0.0)  # within Delta_L
    early_growth = early[-1] - w
    late = drive_rounds(cc, 10, now=10.0)
    late_growth = late[-1] - early[-1]
    assert late_growth > early_growth * 2


def test_htcp_beta_adapts_to_rtt_ratio():
    cc = HTcp(mss=MSS)
    cc.ssthresh_seg = 0.0
    cc.cwnd_seg = 100.0
    cc._observe_rtt(0.04)
    cc._observe_rtt(0.08)
    cc.on_loss(1.0)
    assert cc.beta == pytest.approx(0.5)
    assert cc.cwnd_seg == pytest.approx(50.0)


# -- hypothesis invariants ------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(
    name=st.sampled_from(["reno", "cubic", "bic", "htcp"]),
    events=st.lists(st.booleans(), min_size=1, max_size=200),
)
def test_cwnd_stays_positive_and_losses_shrink(name, events):
    cc = make_congestion_control(name, mss=MSS)
    now = 0.0
    for is_loss in events:
        now += RTT
        before = cc.cwnd_seg
        if is_loss:
            cc.on_loss(now)
            assert cc.cwnd_seg <= max(before, 2.0) + 1e-9
        else:
            cc.on_round_acked(cc.cwnd_bytes, now, RTT)
        assert cc.cwnd_seg >= 1.0  # never collapses to nothing
        assert cc.cwnd_bytes > 0


@settings(max_examples=20, deadline=None)
@given(name=st.sampled_from(["reno", "cubic", "bic", "htcp"]))
def test_acked_rounds_never_shrink_window(name):
    cc = make_congestion_control(name, mss=MSS)
    now = 0.0
    for _ in range(100):
        now += RTT
        before = cc.cwnd_seg
        cc.on_round_acked(cc.cwnd_bytes, now, RTT)
        assert cc.cwnd_seg >= before - 1e-9
