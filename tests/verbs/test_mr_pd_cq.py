"""Memory regions, protection domains, completion queues."""

import pytest

from repro.verbs import AccessFlags, WcStatus, WorkCompletion, Opcode
from repro.verbs.errors import RemoteAccessError
from tests.conftest import make_fabric


def test_reg_mr_assigns_keys():
    f = make_fabric()
    pd = f.dev_a.alloc_pd()
    buf = f.a.memory.alloc(4096)
    mr = pd.reg_mr_sync(buf, AccessFlags.REMOTE_WRITE)
    assert mr.rkey != mr.lkey
    assert pd.lookup_rkey(mr.rkey) is mr
    assert pd.lookup_lkey(mr.lkey) is mr


def test_lookup_unknown_rkey():
    f = make_fabric()
    pd = f.dev_a.alloc_pd()
    assert pd.lookup_rkey(0xDEAD) is None
    assert pd.lookup_rkey(None) is None


def test_dereg_invalidates():
    f = make_fabric()
    pd = f.dev_a.alloc_pd()
    buf = f.a.memory.alloc(4096)
    mr = pd.reg_mr_sync(buf, AccessFlags.REMOTE_WRITE)
    pd.dereg_mr(mr)
    assert not mr.valid
    assert pd.lookup_rkey(mr.rkey) is None
    with pytest.raises(RemoteAccessError):
        mr.check_remote(buf.addr, 10, write=True)


def test_access_flag_enforcement():
    f = make_fabric()
    pd = f.dev_a.alloc_pd()
    buf = f.a.memory.alloc(4096)
    wr_only = pd.reg_mr_sync(buf, AccessFlags.REMOTE_WRITE)
    wr_only.check_remote(buf.addr, 100, write=True)
    with pytest.raises(RemoteAccessError):
        wr_only.check_remote(buf.addr, 100, write=False)


def test_bounds_enforcement():
    f = make_fabric()
    pd = f.dev_a.alloc_pd()
    buf = f.a.memory.alloc(4096)
    mr = pd.reg_mr_sync(buf, AccessFlags.REMOTE_WRITE)
    mr.check_remote(buf.addr, 4096, write=True)
    with pytest.raises(RemoteAccessError):
        mr.check_remote(buf.addr, 4097, write=True)
    with pytest.raises(RemoteAccessError):
        mr.check_remote(buf.addr - 1, 10, write=True)


def test_mr_contents_place_fetch_take():
    f = make_fabric()
    pd = f.dev_a.alloc_pd()
    buf = f.a.memory.alloc(4096)
    mr = pd.reg_mr_sync(buf, AccessFlags.REMOTE_WRITE)
    mr.place(buf.addr, "payload")
    assert mr.fetch(buf.addr) == "payload"
    assert mr.take(buf.addr) == "payload"
    assert mr.take(buf.addr) is None


def test_timed_registration_charges_cpu():
    f = make_fabric()
    pd = f.dev_a.alloc_pd()
    buf = f.a.memory.alloc(1 << 20)  # 256 pages
    thread = f.a.thread("reg")

    def proc(env):
        mr = yield pd.reg_mr(thread, buf, AccessFlags.REMOTE_WRITE)
        return mr

    p = f.engine.process(proc(f.engine))
    f.engine.run()
    assert p.value.valid
    profile = f.dev_a.arch_profile
    expected = profile.reg_mr_base_seconds + buf.pages * profile.reg_mr_page_seconds
    assert f.a.cpu.busy_seconds("app") == pytest.approx(expected)


# -- CQ ------------------------------------------------------------------------
def _wc(i=0):
    return WorkCompletion(wr_id=i, opcode=Opcode.SEND, status=WcStatus.SUCCESS)


def test_cq_poll_batches_and_costs():
    f = make_fabric()
    cq = f.dev_a.create_cq()
    for i in range(10):
        cq.push(_wc(i))
    thread = f.a.thread("poller")

    def proc(env):
        batch = yield cq.poll(thread, max_entries=4)
        return batch

    p = f.engine.process(proc(f.engine))
    f.engine.run()
    assert [wc.wr_id for wc in p.value] == [0, 1, 2, 3]
    assert len(cq) == 6
    assert f.a.cpu.busy_seconds() == pytest.approx(
        4 * f.dev_a.arch_profile.poll_cqe_seconds
    )


def test_cq_empty_poll_costs_little():
    f = make_fabric()
    cq = f.dev_a.create_cq()
    thread = f.a.thread("poller")

    def proc(env):
        return (yield cq.poll(thread))

    p = f.engine.process(proc(f.engine))
    f.engine.run()
    assert p.value == []
    assert f.a.cpu.busy_seconds() == pytest.approx(
        f.dev_a.arch_profile.poll_empty_seconds
    )


def test_cq_overflow_raises_typed_error():
    from repro.verbs.errors import CqOverflowError

    f = make_fabric()
    cq = f.dev_a.create_cq(depth=2)
    for i in range(2):
        cq.push(_wc(i))
    for i in range(2, 5):
        with pytest.raises(CqOverflowError):
            cq.push(_wc(i))
    assert len(cq) == 2
    assert cq.overflows == 3
    counter = f.engine.metrics.get("cq.overflow")
    assert counter is not None and counter.total == 3
    # The counter is lazy: a healthy run never registers the family.
    f2 = make_fabric()
    f2.dev_a.create_cq(depth=2).push(_wc(0))
    assert f2.engine.metrics.get("cq.overflow") is None


def test_completion_channel_wakes_on_push():
    f = make_fabric()
    cq = f.dev_a.create_cq()
    from repro.verbs import CompletionChannel

    channel = CompletionChannel(cq)
    thread = f.a.thread("waiter")
    woke = []

    def waiter(env):
        yield channel.wait(thread)
        woke.append(env.now)

    def pusher(env):
        yield env.timeout(1.0)
        cq.push(_wc())

    f.engine.process(waiter(f.engine))
    f.engine.process(pusher(f.engine))
    f.engine.run()
    assert len(woke) == 1 and woke[0] >= 1.0


def test_completion_channel_immediate_when_pending():
    f = make_fabric()
    cq = f.dev_a.create_cq()
    from repro.verbs import CompletionChannel

    channel = CompletionChannel(cq)
    cq.push(_wc())
    thread = f.a.thread("waiter")

    def waiter(env):
        yield channel.wait(thread)
        return env.now

    p = f.engine.process(waiter(f.engine))
    f.engine.run()
    assert p.ok


def test_single_channel_per_cq():
    f = make_fabric()
    cq = f.dev_a.create_cq()
    from repro.verbs import CompletionChannel

    CompletionChannel(cq)
    with pytest.raises(RuntimeError):
        CompletionChannel(cq)
