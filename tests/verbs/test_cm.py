"""Connection manager: listen, connect, accept, reject."""

import pytest

from repro.verbs import VerbsError
from repro.verbs.qp import QpState
from tests.conftest import make_fabric


def _mk_qp(dev):
    pd = dev.alloc_pd()
    return dev.create_qp(pd, dev.create_cq(), dev.create_cq())


def test_connect_accept_pairs_qps():
    f = make_fabric(rtt=2e-3)
    listener = f.cm.listen(f.dev_b, 7000)
    client_qp = _mk_qp(f.dev_a)

    def server(env):
        request = yield listener.get_request()
        assert request.private_data == "hello"
        server_qp = _mk_qp(f.dev_b)
        request.accept(server_qp)
        return server_qp

    sproc = f.engine.process(server(f.engine))
    connect = f.cm.connect(client_qp, f.dev_b, 7000, private_data="hello")
    f.engine.run()
    assert connect.ok
    server_qp = sproc.value
    assert connect.value is server_qp
    assert client_qp.state is QpState.RTS
    assert server_qp.state is QpState.RTS
    assert client_qp.peer is server_qp
    # Handshake costs on the order of 1.5 RTT.
    assert f.engine.now >= 1.5 * 2e-3 * 0.9


def test_connect_no_listener_fails():
    f = make_fabric()
    qp = _mk_qp(f.dev_a)
    connect = f.cm.connect(qp, f.dev_b, 9999)
    caught = []

    def watcher(env):
        try:
            yield connect
        except VerbsError as exc:
            caught.append(str(exc))

    f.engine.process(watcher(f.engine))
    f.engine.run()
    assert caught and "refused" in caught[0]


def test_reject_propagates():
    f = make_fabric()
    listener = f.cm.listen(f.dev_b, 7000)
    qp = _mk_qp(f.dev_a)

    def server(env):
        request = yield listener.get_request()
        request.reject("full")

    f.engine.process(server(f.engine))
    connect = f.cm.connect(qp, f.dev_b, 7000)
    caught = []

    def watcher(env):
        try:
            yield connect
        except VerbsError as exc:
            caught.append(str(exc))

    f.engine.process(watcher(f.engine))
    f.engine.run()
    assert caught and "rejected" in caught[0]


def test_duplicate_listen_rejected():
    f = make_fabric()
    f.cm.listen(f.dev_b, 7000)
    with pytest.raises(VerbsError):
        f.cm.listen(f.dev_b, 7000)


def test_listener_close_unbinds():
    f = make_fabric()
    listener = f.cm.listen(f.dev_b, 7000)
    listener.close()
    f.cm.listen(f.dev_b, 7000)  # no error after close


def test_unwired_devices_have_no_path():
    f = make_fabric()
    from repro.verbs import Device

    lonely = Device(f.a.nic)
    with pytest.raises(VerbsError):
        f.fabric.path_between(lonely, f.dev_b)
