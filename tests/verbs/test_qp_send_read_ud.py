"""SEND/RECV with RNR, RDMA READ with ORD, and UD datagrams."""

import pytest

from repro.verbs import Opcode, QpState, QpType, RecvWR, SendWR, WcStatus
from repro.verbs.errors import MtuExceededError
from tests.conftest import make_fabric


# -- SEND/RECV -----------------------------------------------------------------
def test_send_delivers_payload_to_recv():
    f = make_fabric()
    qa, qb = f.qp_pair()
    qb.post_recv(RecvWR(length=8192, wr_id=3))
    qa.post_send(SendWR(opcode=Opcode.SEND, length=4096, wr_id=1, payload="msg"))
    f.engine.run()
    rwc = qb.recv_cq.poll_nocost()[0]
    assert rwc.ok and rwc.payload == "msg" and rwc.wr_id == 3
    swc = qa.send_cq.poll_nocost()[0]
    assert swc.ok and swc.wr_id == 1


def test_send_without_recv_rnr_retries_until_posted():
    f = make_fabric()
    qa, qb = f.qp_pair()
    qa.post_send(SendWR(opcode=Opcode.SEND, length=4096, wr_id=1, payload="late"))

    def poster(env):
        yield env.timeout(1e-3)
        qb.post_recv(RecvWR(length=8192, wr_id=9))

    f.engine.process(poster(f.engine))
    f.engine.run()
    assert qa.rnr_naks.count >= 1
    assert qb.recv_cq.poll_nocost()[0].payload == "late"
    assert qa.send_cq.poll_nocost()[0].ok


def test_rnr_retry_exhaustion_errors_qp():
    f = make_fabric()
    qa, qb = f.qp_pair(rnr_retry=2)
    qa.post_send(SendWR(opcode=Opcode.SEND, length=4096, wr_id=1))
    f.engine.run()
    wc = qa.send_cq.poll_nocost()[0]
    assert wc.status is WcStatus.RNR_RETRY_EXC_ERR
    assert qa.state is QpState.ERROR


def test_send_longer_than_recv_buffer_errors():
    f = make_fabric()
    qa, qb = f.qp_pair()
    qb.post_recv(RecvWR(length=1024, wr_id=2))
    qa.post_send(SendWR(opcode=Opcode.SEND, length=4096, wr_id=1))
    f.engine.run()
    assert qa.send_cq.poll_nocost()[0].status is WcStatus.LOC_LEN_ERR


def test_qp_error_flushes_posted_recvs():
    f = make_fabric()
    qa, qb = f.qp_pair(rnr_retry=0)
    qb_own_recv = RecvWR(length=64, wr_id=77)
    qa.post_recv(qb_own_recv)
    qa.post_send(SendWR(opcode=Opcode.SEND, length=4096, wr_id=1))
    f.engine.run()
    flushed = qa.recv_cq.poll_nocost()
    assert any(wc.status is WcStatus.WR_FLUSH_ERR for wc in flushed)


def test_send_cpu_free_data_path():
    """The QP itself charges no CPU (kernel bypass)."""
    f = make_fabric()
    qa, qb = f.qp_pair()
    qb.post_recv(RecvWR(length=1 << 20, wr_id=0))
    qa.post_send(SendWR(opcode=Opcode.SEND, length=1 << 20, wr_id=0))
    f.engine.run()
    assert f.a.cpu.busy_seconds() == 0.0
    assert f.b.cpu.busy_seconds() == 0.0


# -- RDMA READ -------------------------------------------------------------------
def test_read_fetches_remote_payload():
    f = make_fabric()
    qa, qb = f.qp_pair()
    _, buf, mr = f.remote_mr()
    mr.place(buf.addr, "remote-data")
    wr = SendWR(
        opcode=Opcode.RDMA_READ,
        length=4096,
        wr_id=1,
        remote_addr=buf.addr,
        rkey=mr.rkey,
    )
    qa.post_send(wr)
    f.engine.run()
    assert qa.send_cq.poll_nocost()[0].ok
    assert wr.payload == "remote-data"


def test_read_requires_remote_read_permission():
    f = make_fabric()
    qa, _ = f.qp_pair()
    _, buf, mr = f.remote_mr(read=False)
    qa.post_send(
        SendWR(
            opcode=Opcode.RDMA_READ,
            length=64,
            wr_id=1,
            remote_addr=buf.addr,
            rkey=mr.rkey,
        )
    )
    f.engine.run()
    assert qa.send_cq.poll_nocost()[0].status is WcStatus.REM_ACCESS_ERR


def test_read_latency_includes_request_round_trip():
    rtt = 10e-3
    f = make_fabric(rtt=rtt)
    qa, _ = f.qp_pair()
    _, buf, mr = f.remote_mr()
    qa.post_send(
        SendWR(
            opcode=Opcode.RDMA_READ,
            length=4096,
            wr_id=1,
            remote_addr=buf.addr,
            rkey=mr.rkey,
        )
    )
    f.engine.run()
    assert qa.send_cq.poll_nocost()[0].timestamp >= rtt


def test_read_ord_caps_wan_throughput():
    """ORD * block / RTT bounds READ goodput on a long path — the
    documented WAN collapse that motivates the WRITE-based protocol."""
    rtt = 40e-3
    f = make_fabric(gbps=10.0, rtt=rtt)
    qa, _ = f.qp_pair(max_ord=4)
    _, buf, mr = f.remote_mr(size=1 << 21)
    n, block = 32, 1 << 20

    def pump(env):
        for i in range(n):
            while qa.send_room == 0:
                yield env.timeout(1e-5)
            qa.post_send(
                SendWR(
                    opcode=Opcode.RDMA_READ,
                    length=block,
                    wr_id=i,
                    remote_addr=buf.addr,
                    rkey=mr.rkey,
                )
            )
        while qa.send_outstanding:
            yield env.timeout(1e-4)

    f.engine.process(pump(f.engine))
    f.engine.run()
    gbps = n * block * 8 / f.engine.now / 1e9
    ord_bound = 4 * block * 8 / rtt / 1e9  # ≈ 0.84 Gbps
    assert gbps <= ord_bound * 1.1
    assert gbps < 2.0  # far below the 10G line rate


def test_write_beats_read_at_small_blocks_high_depth():
    """Figure 3/4's high-depth ordering: WRITE > READ for small blocks."""

    def run(opcode):
        f = make_fabric(gbps=40.0)
        qa, _ = f.qp_pair()
        _, buf, mr = f.remote_mr(size=1 << 20)
        n, block = 256, 16 * 1024

        def pump(env):
            sent = 0
            while sent < n:
                if qa.send_outstanding < 16:
                    qa.post_send(
                        SendWR(
                            opcode=opcode,
                            length=block,
                            wr_id=sent,
                            remote_addr=buf.addr,
                            rkey=mr.rkey,
                        )
                    )
                    sent += 1
                else:
                    yield env.timeout(1e-6)
            while qa.send_outstanding:
                yield env.timeout(1e-6)

        f.engine.process(pump(f.engine))
        f.engine.run()
        return n * block * 8 / f.engine.now / 1e9

    write_gbps = run(Opcode.RDMA_WRITE)
    read_gbps = run(Opcode.RDMA_READ)
    assert write_gbps > read_gbps * 1.3


# -- UD ------------------------------------------------------------------------
def _ud_pair(f):
    return f.qp_pair(qp_type=QpType.UD)


def test_ud_respects_mtu():
    f = make_fabric()
    qa, qb = _ud_pair(f)
    with pytest.raises(MtuExceededError):
        qa.post_send(SendWR(opcode=Opcode.SEND, length=100_000, wr_id=1))


def test_ud_delivery_and_silent_drop():
    f = make_fabric()
    qa, qb = _ud_pair(f)
    qb.post_recv(RecvWR(length=9000, wr_id=5))
    qa.post_send(SendWR(opcode=Opcode.SEND, length=4096, wr_id=1, payload="d1"))
    qa.post_send(SendWR(opcode=Opcode.SEND, length=4096, wr_id=2, payload="d2"))
    f.engine.run()
    delivered = qb.recv_cq.poll_nocost()
    assert len(delivered) == 1 and delivered[0].payload == "d1"
    assert qb.ud_drops.count == 1
    # Sender still gets local completions for both (unreliable service).
    assert len(qa.send_cq.poll_nocost()) == 2


def test_ud_rejects_rdma_opcodes():
    f = make_fabric()
    qa, _ = _ud_pair(f)
    from repro.verbs.errors import QpStateError

    with pytest.raises((QpStateError, ValueError)):
        qa.post_send(
            SendWR(opcode=Opcode.RDMA_WRITE, length=64, wr_id=1, rkey=1)
        )
