"""RDMA WRITE: timing, bandwidth, rkey enforcement, completion order."""

import pytest

from repro.verbs import Opcode, SendWR, WcStatus
from repro.verbs.errors import QpStateError, QueueFullError
from tests.conftest import make_fabric


def _write_wr(mr, buf, i=0, length=4096, payload=None):
    return SendWR(
        opcode=Opcode.RDMA_WRITE,
        length=length,
        wr_id=i,
        remote_addr=buf.addr,
        rkey=mr.rkey,
        payload=payload,
    )


def test_write_places_payload_and_completes():
    f = make_fabric()
    qa, qb = f.qp_pair()
    _, buf, mr = f.remote_mr()

    def proc(env):
        qa.post_send(_write_wr(mr, buf, 7, payload="hello"))
        yield env.timeout(1)

    f.engine.process(proc(f.engine))
    f.engine.run()
    wcs = qa.send_cq.poll_nocost()
    assert len(wcs) == 1
    assert wcs[0].wr_id == 7 and wcs[0].ok
    assert mr.fetch(buf.addr) == "hello"
    # One-sided: no receive-side completion.
    assert len(qb.recv_cq.poll_nocost()) == 0


def test_write_completion_includes_rtt():
    rtt = 1e-3
    f = make_fabric(rtt=rtt)
    qa, qb = f.qp_pair()
    _, buf, mr = f.remote_mr()

    qa.post_send(_write_wr(mr, buf, length=4096))
    f.engine.run()
    wcs = qa.send_cq.poll_nocost()
    # Completion requires the ACK: at least one full RTT.
    assert wcs[0].timestamp >= rtt


def test_write_bandwidth_near_line_rate():
    f = make_fabric(gbps=40.0)
    qa, qb = f.qp_pair()
    _, buf, mr = f.remote_mr(size=1 << 21)
    n, block = 64, 256 * 1024

    def pump(env):
        sent = 0
        while sent < n:
            if qa.send_outstanding < 16:
                qa.post_send(_write_wr(mr, buf, sent, block))
                sent += 1
            else:
                yield env.timeout(1e-6)
        while qa.send_outstanding:
            yield env.timeout(1e-6)

    f.engine.process(pump(f.engine))
    f.engine.run()
    gbps = n * block * 8 / f.engine.now / 1e9
    assert gbps > 0.9 * 40.0


def test_write_bad_rkey_errors_qp():
    f = make_fabric()
    qa, qb = f.qp_pair()
    _, buf, mr = f.remote_mr()
    qa.post_send(
        SendWR(
            opcode=Opcode.RDMA_WRITE,
            length=64,
            wr_id=1,
            remote_addr=buf.addr,
            rkey=0xBAD,
        )
    )
    f.engine.run()
    wcs = qa.send_cq.poll_nocost()
    assert wcs[0].status is WcStatus.REM_ACCESS_ERR
    from repro.verbs import QpState

    assert qa.state is QpState.ERROR
    with pytest.raises(QpStateError):
        qa.post_send(_write_wr(mr, buf))


def test_write_out_of_bounds_errors():
    f = make_fabric()
    qa, _ = f.qp_pair()
    _, buf, mr = f.remote_mr(size=4096)
    qa.post_send(_write_wr(mr, buf, length=8192))
    f.engine.run()
    assert qa.send_cq.poll_nocost()[0].status is WcStatus.REM_ACCESS_ERR


def test_completions_in_post_order():
    """RC delivers completions strictly in post order per QP."""
    f = make_fabric()
    qa, _ = f.qp_pair()
    _, buf, mr = f.remote_mr(size=1 << 22)
    # Mix of sizes: later small writes would finish earlier physically.
    sizes = [1 << 20, 4096, 1 << 19, 4096, 1 << 18]
    for i, size in enumerate(sizes):
        qa.post_send(_write_wr(mr, buf, i, size))
    f.engine.run()
    wcs = qa.send_cq.poll_nocost(100)
    assert [wc.wr_id for wc in wcs] == list(range(len(sizes)))


def test_unsignaled_write_skips_cqe():
    f = make_fabric()
    qa, _ = f.qp_pair()
    _, buf, mr = f.remote_mr()
    wr = _write_wr(mr, buf, 5)
    wr.signaled = False
    qa.post_send(wr)
    f.engine.run()
    assert qa.send_cq.poll_nocost() == []
    assert qa.send_outstanding == 0  # slot reclaimed anyway


def test_send_queue_depth_enforced():
    f = make_fabric()
    qa, _ = f.qp_pair(max_send_wr=4)
    _, buf, mr = f.remote_mr()
    for i in range(4):
        qa.post_send(_write_wr(mr, buf, i))
    with pytest.raises(QueueFullError):
        qa.post_send(_write_wr(mr, buf, 99))


def test_write_with_imm_consumes_recv():
    f = make_fabric()
    qa, qb = f.qp_pair()
    _, buf, mr = f.remote_mr()
    from repro.verbs import RecvWR

    qb.post_recv(RecvWR(length=0, wr_id=42))
    qa.post_send(
        SendWR(
            opcode=Opcode.RDMA_WRITE_WITH_IMM,
            length=4096,
            wr_id=1,
            remote_addr=buf.addr,
            rkey=mr.rkey,
            imm_data=0x1234,
            payload="imm-payload",
        )
    )
    f.engine.run()
    rwcs = qb.recv_cq.poll_nocost()
    assert len(rwcs) == 1
    assert rwcs[0].imm_data == 0x1234
    assert rwcs[0].wr_id == 42
    assert mr.fetch(buf.addr) == "imm-payload"


def test_pcie_cap_limits_write_bandwidth():
    """The InfiniBand-testbed effect: PCIe below line rate caps goodput."""
    f = make_fabric(gbps=40.0, pcie_gbps=25.6)
    qa, _ = f.qp_pair()
    _, buf, mr = f.remote_mr(size=1 << 21)
    n, block = 64, 256 * 1024

    def pump(env):
        sent = 0
        while sent < n:
            if qa.send_outstanding < 16:
                qa.post_send(_write_wr(mr, buf, sent, block))
                sent += 1
            else:
                yield env.timeout(1e-6)
        while qa.send_outstanding:
            yield env.timeout(1e-6)

    f.engine.process(pump(f.engine))
    f.engine.run()
    gbps = n * block * 8 / f.engine.now / 1e9
    assert gbps < 25.6
    assert gbps > 0.85 * 25.6
