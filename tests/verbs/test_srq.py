"""Shared receive queues: WQE accounting, RNR semantics, error isolation."""

import pytest

from repro.verbs import Opcode, RecvWR, SendWR
from repro.verbs.errors import QpStateError, QueueFullError
from tests.conftest import make_fabric


def _srq_fabric(depth=8, n_pairs=2, **qp_kwargs):
    """``n_pairs`` connected QP pairs whose b-side QPs share one SRQ."""
    f = make_fabric()
    f.pd_a = f.dev_a.alloc_pd()
    f.pd_b = f.dev_b.alloc_pd()
    srq = f.pd_b.create_srq(depth=depth)
    pairs = []
    from repro.verbs import connect_pair

    for _ in range(n_pairs):
        qa = f.dev_a.create_qp(
            f.pd_a, f.dev_a.create_cq(), f.dev_a.create_cq(), **qp_kwargs
        )
        qb = f.dev_b.create_qp(
            f.pd_b, f.dev_b.create_cq(), f.dev_b.create_cq(),
            srq=srq, **qp_kwargs
        )
        connect_pair(qa, qb, f.duplex)
        pairs.append((qa, qb))
    return f, srq, pairs


def test_sends_on_many_qps_draw_from_one_srq():
    f, srq, pairs = _srq_fabric()
    for i in range(4):
        srq.post_recv(RecvWR(length=8192, wr_id=100 + i))
    (qa0, qb0), (qa1, qb1) = pairs
    qa0.post_send(SendWR(opcode=Opcode.SEND, length=4096, wr_id=1, payload="p0"))
    qa1.post_send(SendWR(opcode=Opcode.SEND, length=4096, wr_id=2, payload="p1"))
    f.engine.run()
    # Each completion lands on the consuming QP's own recv CQ.
    wc0 = qb0.recv_cq.poll_nocost()[0]
    wc1 = qb1.recv_cq.poll_nocost()[0]
    assert wc0.ok and wc0.payload == "p0" and wc0.qp_num == qb0.qp_num
    assert wc1.ok and wc1.payload == "p1" and wc1.qp_num == qb1.qp_num
    assert srq._m_posted.count == 4
    assert srq._m_consumed.count == 2
    assert srq.recv_posted == 2


def test_empty_srq_rnr_retries_until_posted():
    f, srq, pairs = _srq_fabric()
    qa, qb = pairs[0]
    qa.post_send(SendWR(opcode=Opcode.SEND, length=4096, wr_id=1, payload="late"))

    def poster(env):
        yield env.timeout(1e-3)
        srq.post_recv(RecvWR(length=8192, wr_id=9))

    f.engine.process(poster(f.engine))
    f.engine.run()
    assert qa.rnr_naks.count >= 1
    assert srq._m_empty.count >= 1
    assert qb.recv_cq.poll_nocost()[0].payload == "late"


def test_post_recv_on_srq_qp_is_rejected():
    _, _, pairs = _srq_fabric()
    _, qb = pairs[0]
    with pytest.raises(QpStateError):
        qb.post_recv(RecvWR(length=64, wr_id=1))


def test_srq_depth_bounds_posted_wqes():
    _, srq, _ = _srq_fabric(depth=2)
    srq.post_recv(RecvWR(length=64, wr_id=0))
    srq.post_recv(RecvWR(length=64, wr_id=1))
    with pytest.raises(QueueFullError):
        srq.post_recv(RecvWR(length=64, wr_id=2))
    assert srq.recv_posted == 2


def test_qp_error_does_not_flush_shared_wqes():
    f, srq, pairs = _srq_fabric()
    for i in range(2):
        srq.post_recv(RecvWR(length=8192, wr_id=i))
    (qa0, qb0), (qa1, qb1) = pairs
    qb0.kill()
    qa1.post_send(SendWR(opcode=Opcode.SEND, length=4096, wr_id=7, payload="ok"))
    f.engine.run()
    # The dead QP flushed nothing from the shared queue; the survivor
    # consumed exactly one WQE.
    assert qb0.recv_cq.poll_nocost() == []
    assert qb1.recv_cq.poll_nocost()[0].payload == "ok"
    assert srq.recv_posted == 1


def test_srq_requires_matching_pd():
    f = make_fabric()
    pd_a = f.dev_b.alloc_pd()
    pd_other = f.dev_b.alloc_pd()
    srq = pd_other.create_srq()
    with pytest.raises(QpStateError):
        f.dev_b.create_qp(
            pd_a, f.dev_b.create_cq(), f.dev_b.create_cq(), srq=srq
        )


def test_srq_metrics_absent_without_srq():
    f = make_fabric()
    f.qp_pair()
    assert f.engine.metrics.family("srq.posted") == []


def test_srq_close_drains():
    f, srq, pairs = _srq_fabric()
    srq.post_recv(RecvWR(length=64, wr_id=0))
    drained = srq.close()
    assert [wr.wr_id for wr in drained] == [0]
    assert srq.recv_posted == 0
    with pytest.raises(QpStateError):
        srq.post_recv(RecvWR(length=64, wr_id=1))
