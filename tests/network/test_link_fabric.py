"""Links and multi-hop paths: serialisation, propagation, pipelining."""

import pytest

from repro.network import Link, Path, back_to_back, lan_switched, wan_path
from repro.network.fabric import DuplexPath


# -- Link --------------------------------------------------------------------
def test_link_serialisation_time(engine):
    link = Link(engine, gbps=8.0)  # 1 GB/s

    def proc(env):
        yield from link.serialize(1_000_000)

    engine.process(proc(engine))
    engine.run()
    assert engine.now == pytest.approx(1e-3)
    assert link.bytes_sent.total == 1_000_000


def test_link_fifo(engine):
    link = Link(engine, gbps=8.0)
    order = []

    def proc(env, tag):
        yield from link.serialize(1_000_000)
        order.append((env.now, tag))

    engine.process(proc(engine, "a"))
    engine.process(proc(engine, "b"))
    engine.run()
    assert order[0] == (pytest.approx(1e-3), "a")
    assert order[1] == (pytest.approx(2e-3), "b")


def test_link_mtu_check(engine):
    link = Link(engine, gbps=10, mtu=9000)
    link.check_mtu(9000)
    with pytest.raises(ValueError):
        link.check_mtu(9001)


def test_link_validation(engine):
    with pytest.raises(ValueError):
        Link(engine, gbps=0)
    with pytest.raises(ValueError):
        Link(engine, gbps=1, delay=-1)


# -- Path ---------------------------------------------------------------------
def test_path_transmit_includes_propagation(engine):
    link = Link(engine, gbps=8.0, delay=0.010)
    path = Path(engine, [link])

    def proc(env):
        yield from path.transmit(1_000_000)

    engine.process(proc(engine))
    engine.run()
    assert engine.now == pytest.approx(1e-3 + 0.010)


def test_path_bottleneck_is_min_rate(engine):
    links = [Link(engine, 100.0), Link(engine, 10.0), Link(engine, 40.0)]
    path = Path(engine, links)
    assert path.bottleneck_gbps == 10.0


def test_path_pipelines_across_hops(engine):
    """Steady-state throughput through 2 hops equals one hop's rate."""
    links = [Link(engine, 8.0), Link(engine, 8.0)]
    path = Path(engine, links)
    N = 20
    done = []

    def proc(env, i):
        yield from path.transmit(1_000_000)
        done.append(env.now)

    for i in range(N):
        engine.process(proc(engine, i))
    engine.run()
    # First block: 2 serialisations; subsequent: one per ms (pipelined).
    assert done[0] == pytest.approx(2e-3)
    assert done[-1] == pytest.approx((N + 1) * 1e-3)


def test_path_latency_sums_hops(engine):
    links = [Link(engine, 10, delay=0.01), Link(engine, 10, delay=0.02)]
    assert Path(engine, links).latency == pytest.approx(0.03)


def test_path_deliver_latency(engine):
    link = Link(engine, gbps=8.0, delay=0.005)
    path = Path(engine, [link])

    def proc(env):
        yield from path.deliver_latency(64)

    engine.process(proc(engine))
    engine.run()
    assert engine.now == pytest.approx(0.005 + 64 / 1e9)


def test_empty_path_rejected(engine):
    with pytest.raises(ValueError):
        Path(engine, [])


# -- topologies --------------------------------------------------------------------
def test_back_to_back_rtt(engine):
    duplex = back_to_back(engine, 40.0, rtt=25e-6)
    assert duplex.rtt == pytest.approx(25e-6)
    assert duplex.forward.bottleneck_gbps == 40.0


def test_lan_switched_rtt_and_hops(engine):
    duplex = lan_switched(engine, 40.0, rtt=13e-6)
    assert duplex.rtt == pytest.approx(13e-6)
    assert len(duplex.forward.links) == 2


def test_wan_path_topology(engine):
    duplex = wan_path(engine, 10.0, rtt=49e-3)
    assert duplex.rtt == pytest.approx(49e-3, rel=1e-3)
    assert duplex.forward.bottleneck_gbps == 10.0
    # Core link carries the delay; edges are local.
    core = duplex.forward.links[1]
    assert core.gbps == 100.0
    assert core.delay > 0.02


def test_duplex_reversed(engine):
    duplex = back_to_back(engine, 10.0, rtt=1e-3)
    rev = duplex.reversed()
    assert rev.forward is duplex.backward
    assert rev.backward is duplex.forward
    assert isinstance(rev, DuplexPath)
