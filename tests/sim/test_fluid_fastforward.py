"""Kernel-level contracts of the fluid fast-forward machinery.

App-level fluid-vs-discrete equivalence lives in
``tests/test_fluid_equivalence.py``; these tests pin the primitives it
rests on: absolute-deadline timers, synchronous grants, eager process
start, and the analytic path/burst booking.
"""

from __future__ import annotations

import pytest

from repro.network.fabric import back_to_back, wan_path
from repro.sim.engine import Engine
from repro.sim.events import TimeoutAt
from repro.sim.resources import Container, Resource, Store


# -- timeout_at --------------------------------------------------------------
def test_timeout_at_fires_at_exact_absolute_instant():
    engine = Engine()
    fired = []

    def proc():
        yield engine.timeout(0.1)
        # 0.1 + 0.2 != 0.30000000000000004 is exactly the float identity
        # timeout_at exists to avoid: the deadline is used verbatim.
        yield engine.timeout_at(0.7, value="late")
        fired.append(engine.now)

    engine.process(proc())
    engine.run()
    assert fired == [0.7]


def test_timeout_at_carries_value_and_cancels():
    engine = Engine()
    seen = []

    def proc():
        value = yield engine.timeout_at(0.25, value=("batch", 3))
        seen.append(value)

    engine.process(proc())
    loser = engine.timeout_at(0.5)
    assert loser.cancel() is True
    engine.run()
    # The tombstone surfaces (and is discarded) without resuming anyone.
    assert seen == [("batch", 3)]


def test_timeout_at_in_the_past_raises():
    engine = Engine()

    def proc():
        yield engine.timeout(1.0)

    engine.process(proc())
    engine.run()
    with pytest.raises(ValueError, match="in the past"):
        TimeoutAt(engine, 0.5)


# -- synchronous grants ------------------------------------------------------
def test_store_put_get_grant_synchronously_under_fluid():
    engine = Engine(use_fluid=True)
    store = Store(engine, capacity=2)
    put = store.put("x")
    assert put.processed and put.ok
    got = store.get()
    assert got.processed and got.value == "x"


def test_store_grants_stay_asynchronous_when_fluid_off():
    engine = Engine(use_fluid=False)
    store = Store(engine, capacity=2)
    put = store.put("x")
    assert put.triggered and not put.processed


def test_store_get_parks_when_empty_even_under_fluid():
    engine = Engine(use_fluid=True)
    store = Store(engine, capacity=2)
    got = store.get()
    assert not got.triggered


def test_resource_request_grants_synchronously_and_parks_when_full():
    engine = Engine(use_fluid=True)
    res = Resource(engine, capacity=1)
    first = res.request()
    assert first.processed and first.ok
    second = res.request()
    assert not second.triggered
    res.release()
    engine.run()
    assert second.triggered


def test_resource_try_acquire():
    engine = Engine(use_fluid=True)
    res = Resource(engine, capacity=1)
    assert res.try_acquire() is True
    assert res.try_acquire() is False
    res.release()
    assert res.try_acquire() is True


def test_container_sync_grant_and_idle():
    engine = Engine(use_fluid=True)
    box = Container(engine, capacity=10.0)
    assert box.idle
    put = box.put(4.0)
    assert put.processed
    got = box.get(3.0)
    assert got.processed and got.value == 3.0
    assert box.level == pytest.approx(1.0)
    # An unsatisfiable get parks and flips ``idle`` — the quiescence
    # signal the bottleneck batcher keys on.
    waiter = box.get(5.0)
    assert not waiter.triggered and not box.idle


def test_container_get_defers_to_parked_putter():
    # With a putter parked, discrete mode serves the putter first; the
    # sync-grant path must not jump the queue even when enough level is
    # already present.
    engine = Engine(use_fluid=True)
    box = Container(engine, capacity=4.0)
    box.put(4.0)
    parked_put = box.put(3.0)  # over capacity: parks
    assert not parked_put.triggered
    got = box.get(3.0)
    assert not got.processed  # went through the discrete queue
    engine.run()
    assert got.triggered and parked_put.triggered


def test_fluid_preserves_spawn_ordering():
    # Regression guard: a spawned body must observe state the spawner
    # mutates *after* the spawn call — fluid mode must never run the
    # body eagerly at construction (doing so once skewed the scheduler
    # bench anchors).
    engine = Engine(use_fluid=True)
    shared = {}
    seen = []

    def child():
        seen.append(shared.get("ready"))
        yield engine.timeout(0.0)

    def parent():
        engine.process(child())
        shared["ready"] = True
        yield engine.timeout(1.0)

    engine.process(parent())
    engine.run()
    assert seen == [True]


# -- analytic path / burst booking -------------------------------------------
def _drive(engine, gen):
    done = []

    def wrap():
        yield from gen
        done.append(engine.now)

    engine.process(wrap())
    engine.run()
    return done[0]


@pytest.mark.parametrize("nbytes,count", [(1 << 16, 1), (1 << 16, 8), (4096, 3)])
def test_transmit_burst_matches_discrete(nbytes, count):
    results = {}
    for fluid in (False, True):
        engine = Engine(use_fluid=fluid)
        path = wan_path(engine, 10.0, 0.05).forward
        results[fluid] = (
            _drive(engine, path.transmit_burst(nbytes, count)),
            engine.events_processed,
        )
    assert results[True][0] == results[False][0]
    if count > 1:
        assert results[True][1] < results[False][1]


def test_transmit_burst_validates_and_handles_zero():
    engine = Engine(use_fluid=True)
    path = back_to_back(engine, 10.0, 0.001).forward
    with pytest.raises(ValueError):
        next(path.transmit_burst(-1, 2))
    with pytest.raises(ValueError):
        next(path.transmit_burst(64, -1))
    assert _drive(engine, path.transmit_burst(1 << 20, 0)) == 0.0


def test_link_escape_hatch_forces_per_hop_events():
    arrivals = {}
    events = {}
    for pinned in (False, True):
        engine = Engine(use_fluid=True)
        path = wan_path(engine, 10.0, 0.05).forward
        if pinned:
            for link in path.links:
                link.use_fluid = False
        arrivals[pinned] = _drive(engine, path.transmit(1 << 20))
        events[pinned] = engine.events_processed
    assert arrivals[True] == arrivals[False]
    assert events[True] > events[False]


def test_flap_disables_chain_mode_but_keeps_timing():
    # A link that has ever flapped must leave analytic chain booking;
    # transfers fall back to per-hop serialisation with identical times.
    engine = Engine(use_fluid=True)
    path = back_to_back(engine, 10.0, 0.001).forward
    link = path.links[0]
    assert not link._flap_seen
    link.fail_for(0.01)
    assert link._flap_seen
    arrival = _drive(engine, path.transmit(1 << 20))

    discrete = Engine(use_fluid=False)
    dpath = back_to_back(discrete, 10.0, 0.001).forward
    dpath.links[0].fail_for(0.01)
    assert arrival == _drive(discrete, dpath.transmit(1 << 20))
