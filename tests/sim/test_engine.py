"""Engine: clock, ordering, run-until, and failure semantics."""

import pytest

from repro.sim import Engine, SimulationError


def test_clock_starts_at_zero(engine):
    assert engine.now == 0.0


def test_timeout_advances_clock(engine):
    log = []

    def proc(env):
        yield env.timeout(2.5)
        log.append(env.now)

    engine.process(proc(engine))
    engine.run()
    assert log == [2.5]
    assert engine.now == 2.5


def test_same_time_events_fire_in_insertion_order(engine):
    order = []

    def proc(env, tag):
        yield env.timeout(1.0)
        order.append(tag)

    for tag in range(5):
        engine.process(proc(engine, tag))
    engine.run()
    assert order == [0, 1, 2, 3, 4]


def test_run_until_stops_clock_exactly(engine):
    def proc(env):
        yield env.timeout(10.0)

    engine.process(proc(engine))
    engine.run(until=3.0)
    assert engine.now == 3.0
    engine.run(until=10.0)
    assert engine.now == 10.0


def test_run_until_in_past_rejected(engine):
    def proc(env):
        yield env.timeout(5.0)

    engine.process(proc(engine))
    engine.run(until=4.0)
    with pytest.raises(ValueError):
        engine.run(until=1.0)


def test_run_until_beyond_last_event_sets_clock(engine):
    def proc(env):
        yield env.timeout(1.0)

    engine.process(proc(engine))
    engine.run(until=100.0)
    assert engine.now == 100.0


def test_step_on_empty_queue_raises(engine):
    with pytest.raises(SimulationError):
        engine.step()


def test_peek_reports_next_event_time(engine):
    assert engine.peek() == float("inf")
    engine.timeout(4.2)
    assert engine.peek() == pytest.approx(4.2)


def test_stop_aborts_run(engine):
    seen = []

    def stopper(env):
        yield env.timeout(1.0)
        seen.append("stop")
        env.stop()

    def later(env):
        yield env.timeout(2.0)
        seen.append("later")

    engine.process(stopper(engine))
    engine.process(later(engine))
    engine.run()
    assert seen == ["stop"]


def test_unhandled_process_failure_raises(engine):
    def boom(env):
        yield env.timeout(1.0)
        raise ValueError("boom")

    engine.process(boom(engine))
    with pytest.raises(SimulationError) as exc_info:
        engine.run()
    assert isinstance(exc_info.value.__cause__, ValueError)


def test_negative_timeout_rejected(engine):
    with pytest.raises(ValueError):
        engine.timeout(-1.0)


def test_determinism_two_identical_runs():
    def build():
        eng = Engine()
        trace = []

        def worker(env, k):
            for i in range(3):
                yield env.timeout(0.1 * (k + 1))
                trace.append((env.now, k, i))

        for k in range(4):
            eng.process(worker(eng, k))
        eng.run()
        return trace

    assert build() == build()
