"""Stores, resources, containers — including hypothesis invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Container, Engine, Resource, Store


# -- Store ---------------------------------------------------------------------
def test_store_fifo_order(engine):
    store = Store(engine)
    got = []

    def producer(env):
        for i in range(5):
            yield env.timeout(1)
            yield store.put(i)

    def consumer(env):
        for _ in range(5):
            item = yield store.get()
            got.append(item)

    engine.process(producer(engine))
    engine.process(consumer(engine))
    engine.run()
    assert got == [0, 1, 2, 3, 4]


def test_store_capacity_blocks_putter(engine):
    store = Store(engine, capacity=2)
    timeline = []

    def producer(env):
        for i in range(4):
            yield store.put(i)
            timeline.append((env.now, f"put{i}"))

    def consumer(env):
        yield env.timeout(10)
        yield store.get()
        yield store.get()

    engine.process(producer(engine))
    engine.process(consumer(engine))
    engine.run()
    times = dict((tag, t) for t, tag in timeline)
    assert times["put0"] == 0 and times["put1"] == 0
    assert times["put2"] == 10 and times["put3"] == 10


def test_store_try_get(engine):
    store = Store(engine)
    assert store.try_get() is None
    store.put("x")
    engine.run()
    assert store.try_get() == "x"
    assert store.try_get() is None


def test_store_multiple_getters_fifo(engine):
    store = Store(engine)
    winners = []

    def getter(env, tag):
        item = yield store.get()
        winners.append((tag, item))

    for tag in "abc":
        engine.process(getter(engine, tag))

    def producer(env):
        yield env.timeout(1)
        for i in range(3):
            yield store.put(i)

    engine.process(producer(engine))
    engine.run()
    assert winners == [("a", 0), ("b", 1), ("c", 2)]


def test_store_invalid_capacity(engine):
    with pytest.raises(ValueError):
        Store(engine, capacity=0)


# -- Resource -------------------------------------------------------------------
def test_resource_mutual_exclusion(engine):
    res = Resource(engine, capacity=1)
    active = []
    max_active = []

    def worker(env):
        yield res.request()
        active.append(1)
        max_active.append(len(active))
        yield env.timeout(1)
        active.pop()
        res.release()

    for _ in range(5):
        engine.process(worker(engine))
    engine.run()
    assert max(max_active) == 1
    assert engine.now == 5


def test_resource_capacity_parallelism(engine):
    res = Resource(engine, capacity=3)

    def worker(env):
        yield res.request()
        yield env.timeout(1)
        res.release()

    for _ in range(6):
        engine.process(worker(engine))
    engine.run()
    assert engine.now == 2  # two waves of three


def test_resource_release_without_request(engine):
    res = Resource(engine, capacity=1)
    with pytest.raises(RuntimeError):
        res.release()


def test_resource_queue_depth(engine):
    res = Resource(engine, capacity=1)

    def holder(env):
        yield res.request()
        yield env.timeout(10)
        res.release()

    def waiter(env):
        yield res.request()
        res.release()

    engine.process(holder(engine))
    engine.process(waiter(engine))
    engine.run(until=1)
    assert res.in_use == 1
    assert res.queued == 1


# -- Container -------------------------------------------------------------------
def test_container_blocking_get(engine):
    c = Container(engine, capacity=100)
    times = []

    def getter(env):
        yield c.get(50)
        times.append(env.now)

    def putter(env):
        yield env.timeout(3)
        yield c.put(50)

    engine.process(getter(engine))
    engine.process(putter(engine))
    engine.run()
    assert times == [3]
    assert c.level == 0


def test_container_blocking_put(engine):
    c = Container(engine, capacity=10, init=10)
    times = []

    def putter(env):
        yield c.put(5)
        times.append(env.now)

    def getter(env):
        yield env.timeout(2)
        yield c.get(5)

    engine.process(putter(engine))
    engine.process(getter(engine))
    engine.run()
    assert times == [2]


def test_container_epsilon_tolerance(engine):
    """Accumulated float error must not starve an exact-quantity getter."""
    c = Container(engine, capacity=1e12)
    target = 1048593

    def putter(env):
        # Sum of thirds never hits the integer exactly in binary floats.
        for _ in range(3):
            yield c.put(target / 3.0)

    def getter(env):
        yield c.get(target)

    engine.process(putter(engine))
    proc = engine.process(getter(engine))
    engine.run()
    assert proc.triggered and proc.ok
    assert c.level == pytest.approx(0, abs=1e-2)


def test_container_validation(engine):
    with pytest.raises(ValueError):
        Container(engine, capacity=0)
    with pytest.raises(ValueError):
        Container(engine, capacity=5, init=6)
    c = Container(engine, capacity=5)
    with pytest.raises(ValueError):
        c.put(-1)
    with pytest.raises(ValueError):
        c.put(6)
    with pytest.raises(ValueError):
        c.get(-1)


# -- hypothesis invariants ----------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(items=st.lists(st.integers(), min_size=1, max_size=30))
def test_store_preserves_order_and_content(items):
    engine = Engine()
    store = Store(engine)
    got = []

    def producer(env):
        for item in items:
            yield store.put(item)

    def consumer(env):
        for _ in items:
            got.append((yield store.get()))

    engine.process(producer(engine))
    engine.process(consumer(engine))
    engine.run()
    assert got == items


@settings(max_examples=50, deadline=None)
@given(
    amounts=st.lists(
        st.floats(min_value=0.1, max_value=1000.0, allow_nan=False),
        min_size=1,
        max_size=30,
    )
)
def test_container_conserves_quantity(amounts):
    engine = Engine()
    c = Container(engine, capacity=1e9)

    def putter(env):
        for a in amounts:
            yield c.put(a)

    def getter(env):
        for a in amounts:
            yield c.get(a)

    engine.process(putter(engine))
    engine.process(getter(engine))
    engine.run()
    assert c.level == pytest.approx(0.0, abs=1e-2)
