"""Processes: return values, exceptions, chaining, kill."""

import pytest

from repro.sim import ProcessKilled, SimulationError


def test_process_return_value(engine):
    def proc(env):
        yield env.timeout(1)
        return "result"

    p = engine.process(proc(engine))
    engine.run()
    assert p.value == "result"


def test_process_waits_on_another_process(engine):
    def inner(env):
        yield env.timeout(2)
        return 7

    def outer(env):
        value = yield env.process(inner(env))
        return value * 3

    p = engine.process(outer(engine))
    engine.run()
    assert p.value == 21
    assert engine.now == 2


def test_process_requires_generator(engine):
    with pytest.raises(TypeError):
        engine.process(lambda: None)


def test_yielding_non_event_fails_process(engine):
    def bad(env):
        yield 42

    engine.process(bad(engine))
    with pytest.raises(SimulationError) as exc:
        engine.run()
    assert isinstance(exc.value.__cause__, TypeError)


def test_exception_in_awaited_process_propagates(engine):
    def failing(env):
        yield env.timeout(1)
        raise RuntimeError("inner failure")

    def outer(env):
        try:
            yield env.process(failing(env))
        except RuntimeError as exc:
            return f"caught: {exc}"

    p = engine.process(outer(engine))
    engine.run()
    assert p.value == "caught: inner failure"


def test_immediate_return_process(engine):
    def instant(env):
        return "now"
        yield  # pragma: no cover - makes this a generator

    p = engine.process(instant(engine))
    engine.run()
    assert p.value == "now"


def test_kill_interrupts_wait(engine):
    stages = []

    def victim(env):
        stages.append("start")
        yield env.timeout(100)
        stages.append("never")

    def killer(env, target):
        yield env.timeout(1)
        target.kill("test")

    victim_proc = engine.process(victim(engine))
    engine.process(killer(engine, victim_proc))
    engine.run()
    assert stages == ["start"]
    assert victim_proc.triggered and not victim_proc.ok
    assert isinstance(victim_proc.value, ProcessKilled)


def test_kill_runs_cleanup(engine):
    cleaned = []

    def victim(env):
        try:
            yield env.timeout(100)
        finally:
            cleaned.append(True)

    def killer(env, target):
        yield env.timeout(1)
        target.kill()

    victim_proc = engine.process(victim(engine))
    engine.process(killer(engine, victim_proc))
    engine.run()
    assert cleaned == [True]


def test_kill_finished_process_is_noop(engine):
    def quick(env):
        yield env.timeout(1)
        return "done"

    p = engine.process(quick(engine))
    engine.run()
    p.kill()
    assert p.value == "done"


def test_is_alive(engine):
    def proc(env):
        yield env.timeout(5)

    p = engine.process(proc(engine))
    assert p.is_alive
    engine.run()
    assert not p.is_alive


def test_chained_already_processed_event(engine):
    """Waiting on an event that has already been processed resumes
    synchronously without deadlock."""

    def proc(env):
        ev = env.timeout(0, "x")
        yield env.timeout(1)
        value = yield ev  # ev processed long ago
        return value

    p = engine.process(proc(engine))
    engine.run()
    assert p.value == "x"
