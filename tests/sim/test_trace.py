"""The structured tracer and its component hooks."""

import pytest

from repro.apps.io import CollectingSink, PatternSource
from repro.core import ProtocolConfig, RdmaMiddleware
from repro.sim import Engine
from repro.sim.trace import Tracer
from repro.testbeds import roce_lan


def test_tracer_records_and_filters():
    tracer = Tracer()
    tracer.emit(1.0, "a", "one", x=1)
    tracer.emit(2.0, "b", "two")
    tracer.emit(3.0, "a", "three", x=2)
    assert len(tracer) == 3
    assert [r.message for r in tracer.query(category="a")] == ["one", "three"]
    assert [r.message for r in tracer.query(since=2.5)] == ["three"]
    assert [r.message for r in tracer.query(category="a", x=2)] == ["three"]


def test_tracer_category_allowlist():
    tracer = Tracer(categories={"keep"})
    tracer.emit(0.0, "keep", "in")
    tracer.emit(0.0, "drop", "out")
    assert len(tracer) == 1
    assert not tracer.wants("drop")


def test_tracer_ring_buffer():
    tracer = Tracer(capacity=3)
    for i in range(5):
        tracer.emit(float(i), "c", f"m{i}")
    assert len(tracer) == 3
    assert tracer.dropped == 2
    assert [r.message for r in tracer.query()] == ["m2", "m3", "m4"]


def test_tracer_validation_and_str():
    with pytest.raises(ValueError):
        Tracer(capacity=0)
    tracer = Tracer()
    tracer.emit(0.5, "cat", "msg", k="v")
    text = str(next(tracer.query()))
    assert "cat" in text and "k=v" in text


def test_engine_trace_noop_without_tracer():
    engine = Engine()
    engine.trace("x", "no crash")  # tracer is None: must be free & safe


def test_transfer_emits_protocol_trace():
    tb = roce_lan()
    tb.engine.tracer = Tracer(categories={"qp", "ctrl", "credits"})
    cfg = ProtocolConfig(
        block_size=1 << 20, num_channels=2, source_blocks=8, sink_blocks=8
    )
    server = RdmaMiddleware(tb.dst, tb.dst_dev, tb.cm, cfg)
    server.serve(4000, CollectingSink(tb.dst))
    client = RdmaMiddleware(tb.src, tb.src_dev, tb.cm, cfg)
    done = client.transfer(tb.dst_dev, 4000, PatternSource(tb.src), 16 << 20)
    tb.engine.run()
    assert done.ok
    tracer = tb.engine.tracer

    writes = list(tracer.query(category="qp", op="rdma_write"))
    assert len(writes) == 16  # one WRITE post per block
    deposits = list(tracer.query(category="credits"))
    assert deposits, "credit grants must be traced"
    ctrl = [r.fields["type"] for r in tracer.query(category="ctrl")]
    assert "block_size_req" in ctrl and "dataset_done" in ctrl
    # Records are chronological.
    times = [r.time for r in tracer.query()]
    assert times == sorted(times)


def test_clear_resets_drop_and_emit_accounting():
    tracer = Tracer(capacity=2)
    for i in range(5):
        tracer.emit(float(i), "c", f"m{i}")
    assert (tracer.emitted, tracer.dropped) == (5, 3)
    tracer.clear()
    assert len(tracer) == 0
    # A cleared tracer must look factory-fresh: stale `emitted` (or
    # `dropped`) made per-phase accounting double-count earlier phases.
    assert (tracer.emitted, tracer.dropped) == (0, 0)
    tracer.emit(9.0, "c", "after")
    assert (tracer.emitted, tracer.dropped) == (1, 0)


def test_capacity_has_a_single_source_of_truth():
    tracer = Tracer(capacity=4)
    assert tracer.capacity == 4 == tracer._records.maxlen
    # `capacity` is a read-only view of the deque bound, so the drop
    # detector can never disagree with the ring's actual size.
    with pytest.raises(AttributeError):
        tracer.capacity = 8
    for i in range(6):
        tracer.emit(float(i), "c", f"m{i}")
    assert len(tracer) == tracer.capacity == 4
    assert tracer.dropped == 2
