"""Event primitives: triggering, chaining, and conditions."""

import pytest

from repro.sim import AllOf, AnyOf, Engine, Event


def test_event_lifecycle(engine):
    ev = engine.event()
    assert not ev.triggered and not ev.processed
    ev.succeed(42)
    assert ev.triggered and ev.ok and ev.value == 42
    engine.run()
    assert ev.processed


def test_event_value_before_trigger_raises(engine):
    ev = engine.event()
    with pytest.raises(RuntimeError):
        _ = ev.value
    with pytest.raises(RuntimeError):
        _ = ev.ok


def test_double_trigger_rejected(engine):
    ev = engine.event()
    ev.succeed()
    with pytest.raises(RuntimeError):
        ev.succeed()
    with pytest.raises(RuntimeError):
        ev.fail(RuntimeError("x"))


def test_fail_requires_exception(engine):
    ev = engine.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_failed_event_propagates_into_process(engine):
    ev = engine.event()
    caught = []

    def waiter(env):
        try:
            yield ev
        except KeyError as exc:
            caught.append(exc)

    engine.process(waiter(engine))
    ev.fail(KeyError("nope"))
    engine.run()
    assert len(caught) == 1


def test_defused_failure_does_not_raise_at_engine(engine):
    ev = engine.event()
    ev.defuse()
    ev.fail(RuntimeError("handled elsewhere"))
    engine.run()  # no SimulationError


def test_allof_waits_for_every_event(engine):
    times = []

    def waiter(env):
        yield AllOf(env, [env.timeout(1), env.timeout(3), env.timeout(2)])
        times.append(env.now)

    engine.process(waiter(engine))
    engine.run()
    assert times == [3]


def test_anyof_fires_on_first(engine):
    times = []

    def waiter(env):
        yield AnyOf(env, [env.timeout(5), env.timeout(1)])
        times.append(env.now)

    engine.process(waiter(engine))
    engine.run()
    assert times == [1]


def test_operator_composition(engine):
    done = []

    def waiter(env):
        yield env.timeout(1) & env.timeout(2)
        done.append(env.now)
        yield env.timeout(10) | env.timeout(1)
        done.append(env.now)

    engine.process(waiter(engine))
    engine.run(until=4)
    assert done == [2, 3]


def test_empty_condition_succeeds_immediately(engine):
    def waiter(env):
        value = yield AllOf(env, [])
        return value

    proc = engine.process(waiter(engine))
    engine.run()
    assert proc.value == {}


def test_condition_collects_values(engine):
    def waiter(env):
        t1 = env.timeout(1, "a")
        t2 = env.timeout(2, "b")
        values = yield AllOf(env, [t1, t2])
        return sorted(values.values())

    proc = engine.process(waiter(engine))
    engine.run()
    assert proc.value == ["a", "b"]


def test_condition_rejects_cross_engine_events(engine):
    other = Engine()
    with pytest.raises(ValueError):
        AllOf(engine, [engine.timeout(1), other.timeout(1)])


def test_callback_after_processed_rejected(engine):
    ev = engine.event()
    ev.succeed()
    engine.run()
    with pytest.raises(RuntimeError):
        ev.add_callback(lambda e: None)
