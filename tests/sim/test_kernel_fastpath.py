"""Kernel fast path: timer cancellation, the timer wheel, and dispatch.

The contract under test is bit-identity: cancellation must not change
the clock or the processed-event count (tombstones still dispatch), and
an engine with the wheel disabled must produce exactly the same
simulation as one with it enabled.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import AnyOf, Engine


# -- Timeout.cancel ----------------------------------------------------------

def test_cancelled_timer_runs_no_callbacks(engine):
    fired = []
    t = engine.timeout(1.0, "late")
    t.add_callback(lambda ev: fired.append(ev.value))
    assert t.cancel() is True
    engine.run()
    assert fired == []
    # The tombstone still advanced the clock and counted as processed.
    assert engine.now == 1.0
    assert engine.events_processed == 1


def test_cancel_after_fire_is_a_deterministic_noop(engine):
    fired = []
    t = engine.timeout(1e-3)
    t.add_callback(lambda ev: fired.append(ev.value))
    engine.run()
    assert len(fired) == 1
    assert t.cancel() is False  # already fired: ignored, never raises
    assert t.cancel() is False  # idempotent


def test_cancel_is_idempotent_before_fire(engine):
    t = engine.timeout(1.0)
    assert t.cancel() is True
    assert t.cancel() is True  # still pending, still cancelled
    engine.run()
    assert engine.now == 1.0


def test_anyof_winner_cancels_loser_timer(engine):
    log = []

    def racer():
        reply = engine.event()
        timer = engine.timeout(1.0)
        engine.process(replier(reply))
        yield AnyOf(engine, [reply, timer])
        assert reply.triggered
        timer.cancel()
        log.append(engine.now)

    def replier(reply):
        yield engine.timeout(1e-6)
        reply.succeed("pong")

    engine.process(racer())
    engine.run()
    assert log == [1e-6]
    # The cancelled loser still drains as a tombstone at its due time.
    assert engine.now == 1.0


# -- Event.trigger guard -----------------------------------------------------

def test_trigger_from_untriggered_source_raises(engine):
    target = engine.event()
    source = engine.event()
    with pytest.raises(RuntimeError, match="source event not yet triggered"):
        target.trigger(source)
    # The target must still be usable afterwards.
    source.succeed(7)
    target.trigger(source)
    engine.run()
    assert target.value == 7


# -- Condition detach --------------------------------------------------------

def test_resolved_anyof_detaches_from_losers(engine):
    winner = engine.event()
    loser = engine.timeout(5.0)
    cond = AnyOf(engine, [winner, loser])
    assert len(loser.callbacks) == 1
    winner.succeed("first")
    engine.run(until=1.0)
    # A Timeout is born triggered, so _collect includes it alongside the
    # winner; the detach contract is about callbacks, not the value dict.
    assert cond.processed and cond.value[winner] == "first"
    # The condition's check callback no longer rides the pending loser.
    assert loser.callbacks == []


def test_failed_condition_detaches_from_pending_children(engine):
    bad = engine.event()
    pending = engine.timeout(5.0)
    cond = AnyOf(engine, [bad, pending])
    cond.defuse()
    bad.defuse()
    bad.fail(RuntimeError("boom"))
    engine.run(until=1.0)
    assert cond.processed and not cond.ok
    assert pending.callbacks == []


# -- wheel-on vs heap-only determinism ---------------------------------------

def _mixed_workload(engine: Engine, log):
    """Timers on and off the wheel horizon, cancellations, and races."""

    def short(i):
        for k in range(20):
            t = engine.timeout(37e-6 + i * 3e-6)
            t.add_callback(lambda ev, i=i, k=k: log.append(("s", i, k, engine.now)))
            yield t

    def racer(i):
        for k in range(10):
            reply = engine.event()
            timer = engine.timeout(80e-6)
            if (i + k) % 3:
                reply.succeed(k)
            yield AnyOf(engine, [reply, timer])
            if reply.triggered:
                timer.cancel()
            log.append(("r", i, k, engine.now))

    def long_timer(i):
        for k in range(3):
            # Far beyond the wheel horizon: exercises the heap path.
            yield engine.timeout(0.4 + i * 1e-3)
            log.append(("l", i, k, engine.now))

    for i in range(4):
        engine.process(short(i))
        engine.process(racer(i))
    engine.process(long_timer(0))
    engine.process(long_timer(1))


def _run_workload(use_wheel: bool):
    engine = Engine(use_wheel=use_wheel)
    log = []
    _mixed_workload(engine, log)
    engine.run()
    return log, engine.now, engine.events_processed


def test_wheel_and_heap_only_engines_are_bit_identical():
    wheel = _run_workload(use_wheel=True)
    heap = _run_workload(use_wheel=False)
    assert wheel == heap


def test_run_until_puts_overshooting_timer_back(engine):
    t = engine.timeout(2.0)
    engine.run(until=1.0)
    assert engine.now == 1.0
    assert not t.processed
    engine.run()
    assert engine.now == 2.0
    assert t.processed


# -- hypothesis: interleaved cancel/succeed/fail sequences -------------------

@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["timer", "cancel", "succeed", "fail", "race"]),
            st.integers(min_value=0, max_value=7),
            st.floats(min_value=1e-6, max_value=0.3, allow_nan=False),
        ),
        min_size=1,
        max_size=40,
    )
)
def test_interleavings_match_between_wheel_and_heap(ops):
    def execute(use_wheel: bool):
        engine = Engine(use_wheel=use_wheel)
        log = []
        timers = {}

        def driver():
            for n, (op, slot, delay) in enumerate(ops):
                if op == "timer":
                    t = engine.timeout(delay)
                    t.add_callback(
                        lambda ev, n=n: log.append(("fire", n, engine.now))
                    )
                    timers[slot] = t
                elif op == "cancel":
                    t = timers.get(slot)
                    if t is not None:
                        log.append(("cancel", n, t.cancel()))
                elif op == "succeed":
                    ev = engine.event()
                    ev.succeed(n)
                    yield ev
                    log.append(("ok", n, engine.now))
                elif op == "fail":
                    ev = engine.event()
                    ev.defuse()
                    ev.fail(RuntimeError(str(n)))
                    try:
                        yield ev
                    except RuntimeError:
                        log.append(("err", n, engine.now))
                else:  # race
                    reply = engine.event()
                    t = engine.timeout(delay)
                    if slot % 2:
                        reply.succeed(n)
                    yield AnyOf(engine, [reply, t])
                    if reply.triggered:
                        t.cancel()
                    log.append(("race", n, engine.now))

        engine.process(driver())
        engine.run()
        return log, engine.now, engine.events_processed

    assert execute(True) == execute(False)
