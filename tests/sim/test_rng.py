"""Deterministic named random streams."""

from repro.sim import RandomStreams


def test_same_seed_same_draws():
    a = RandomStreams(7).stream("x")
    b = RandomStreams(7).stream("x")
    assert list(a.random(5)) == list(b.random(5))


def test_different_names_independent():
    rs = RandomStreams(7)
    a = list(rs.stream("a").random(5))
    b = list(rs.stream("b").random(5))
    assert a != b


def test_stream_identity_cached():
    rs = RandomStreams(0)
    assert rs.stream("x") is rs.stream("x")


def test_creation_order_does_not_matter():
    rs1 = RandomStreams(3)
    rs1.stream("first")
    x1 = list(rs1.stream("second").random(4))
    rs2 = RandomStreams(3)
    x2 = list(rs2.stream("second").random(4))
    assert x1 == x2


def test_spawn_children_independent():
    parent = RandomStreams(5)
    child_a = parent.spawn("host-a")
    child_b = parent.spawn("host-b")
    assert child_a.seed != child_b.seed
    assert list(child_a.stream("s").random(3)) != list(
        child_b.stream("s").random(3)
    )


def test_spawn_deterministic():
    assert RandomStreams(5).spawn("x").seed == RandomStreams(5).spawn("x").seed
