"""The Store APIs the middleware's recovery paths lean on:
``put_many`` (bulk deposit), ``waiters`` (starvation visibility), and
``cancel_get`` (timed-out waiter withdrawal)."""

import pytest

from repro.sim.resources import Store


def test_put_many_serves_waiting_getters_fifo(engine):
    store = Store(engine)
    got = []

    def taker(tag):
        item = yield store.get()
        got.append((tag, item))

    engine.process(taker("a"))
    engine.process(taker("b"))
    engine.run()
    assert store.waiters == 2
    assert store.put_many(["x", "y", "z"]) == 3
    engine.run()
    assert got == [("a", "x"), ("b", "y")]
    assert list(store.items) == ["z"]
    assert store.waiters == 0


def test_put_many_respects_capacity(engine):
    store = Store(engine, capacity=2)
    store.put_many(["a"])
    with pytest.raises(ValueError):
        store.put_many(["b", "c"])
    # The failed bulk put must not have inserted anything.
    assert list(store.items) == ["a"]
    store.put_many(["b"])
    assert list(store.items) == ["a", "b"]


def test_cancel_get_removes_queued_waiter(engine):
    store = Store(engine)
    ev = store.get()
    assert store.waiters == 1
    assert store.cancel_get(ev) is True
    assert store.waiters == 0
    # A later put must not be swallowed by the cancelled getter.
    store.put_many(["item"])
    assert list(store.items) == ["item"]
    assert not ev.triggered


def test_cancel_get_after_satisfaction_returns_false(engine):
    store = Store(engine)
    store.put_many(["item"])
    ev = store.get()
    assert ev.triggered and ev.value == "item"
    # Too late to cancel — the caller owns the item (the middleware's
    # raced-timeout paths check exactly this and keep the value).
    assert store.cancel_get(ev) is False


def test_cancelled_getter_does_not_break_fifo_order(engine):
    store = Store(engine)
    first = store.get()
    second = store.get()
    store.cancel_get(first)
    store.put_many(["only"])
    assert not first.triggered
    assert second.triggered and second.value == "only"
