"""Counters, time series, and time-weighted statistics."""

import pytest

from repro.sim import Counter, TimeSeries, TimeWeightedStat


def test_counter_accumulates():
    c = Counter("bytes")
    c.add(10)
    c.add(5)
    assert c.total == 15
    assert c.count == 2
    c.reset()
    assert c.total == 0 and c.count == 0


def test_timeseries_statistics():
    ts = TimeSeries("lat")
    for t, v in [(0.0, 1.0), (1.0, 3.0), (2.0, 5.0)]:
        ts.record(t, v)
    assert len(ts) == 3
    assert ts.mean() == pytest.approx(3.0)
    assert ts.percentile(50) == pytest.approx(3.0)


def test_timeseries_rate_window():
    ts = TimeSeries("bytes")
    for t in range(1, 11):
        ts.record(float(t), 100.0)
    # 1000 bytes over 10 seconds.
    assert ts.rate(since=0.0) == pytest.approx(100.0)
    # Last 5 samples over the [5, 10] window.
    assert ts.rate(since=5.0) == pytest.approx(600.0 / 5.0)


def test_timeseries_empty():
    ts = TimeSeries()
    assert ts.rate() == 0.0
    assert ts.mean() != ts.mean()  # NaN


def test_time_weighted_average(engine):
    stat = TimeWeightedStat(engine, initial=0.0)

    def proc(env):
        yield env.timeout(2)
        stat.update(4.0)
        yield env.timeout(2)
        stat.update(0.0)
        yield env.timeout(4)

    engine.process(proc(engine))
    engine.run()
    # 0 for 2s, 4 for 2s, 0 for 4s => integral 8, average 1.0 over 8s.
    assert stat.integral() == pytest.approx(8.0)
    assert stat.time_average() == pytest.approx(1.0)


def test_time_weighted_reset(engine):
    stat = TimeWeightedStat(engine, initial=2.0)

    def proc(env):
        yield env.timeout(3)
        stat.reset()
        yield env.timeout(2)

    engine.process(proc(engine))
    engine.run()
    assert stat.integral() == pytest.approx(4.0)  # 2.0 level × 2 s
    assert stat.time_average() == pytest.approx(2.0)


def test_time_weighted_add(engine):
    stat = TimeWeightedStat(engine)
    stat.add(3)
    stat.add(-1)
    assert stat.level == 2
