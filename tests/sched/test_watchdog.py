"""The per-file progress watchdog: wedged slots die, healthy runs don't.

The failure mode the watchdog exists for is a session that neither
progresses nor errors — no lower-layer timeout fires, so without it the
attempt would hold a worker slot forever.  The stuck door below models
exactly that: ``transfer`` returns an event that never resolves and a
link whose progress vector never changes.
"""

from repro.apps.rftp import RftpClient, RftpServer
from repro.core.errors import StuckTransfer
from repro.sched import (
    FileState,
    JobState,
    SchedulerConfig,
    TransferSpec,
    run_sched,
    synthetic_spec,
)
from repro.sched.broker import RftpDoor, TransferBroker
from repro.sim.events import Event
from repro.testbeds import roce_lan

MiB = 1 << 20


class _StuckJob:
    """A link-level job whose progress vector never moves."""

    start_seq = 0
    marker = 0
    completed_blocks = 0
    fallback_blocks = 0
    started_at = None


class _StuckLink:
    health = None  # watchdog falls back to its minimum poll interval

    def __init__(self):
        self.jobs = {}
        self._events = {}

    def abort_session(self, session_id, exc):
        self.jobs.pop(session_id, None)
        event = self._events.pop(session_id, None)
        if event is not None and not event.triggered:
            event.fail(exc)


class _StuckDoor:
    """Accepts a session, then sits on it forever."""

    name = "door-stuck"

    def __init__(self, engine):
        self.engine = engine
        self.active = 0
        self.max_sessions = 4
        self.link = _StuckLink()
        self.breaker = None  # the broker installs its own

    def admissible(self, now):
        return True

    def transfer(self, task, session_id=None):
        event = Event(self.engine)
        self.link.jobs[session_id] = _StuckJob()
        self.link._events[session_id] = event
        return event


def test_watchdog_kills_a_stalled_attempt_and_failover_continues():
    tb = roce_lan()
    server = RftpServer(tb)
    server.start(2811)
    client = RftpClient(tb)
    cfg = SchedulerConfig(
        watchdog=True,
        watchdog_min_interval=0.05,
        watchdog_rto_multiplier=1.0,
        retry_backoff=0.1,
        retry_jitter=0.0,
    )
    out = {}

    def driver(env):
        good = RftpDoor("door-good", client.middleware, tb.dst_dev, 2811,
                        client.source, tcp_factory=tb.tcp_connection)
        yield good.open()
        stuck = _StuckDoor(tb.engine)
        broker = TransferBroker(tb.engine, [stuck, good], cfg)
        job = broker.submit("t", [
            TransferSpec("/data/x", 2 * MiB,
                         sources=("door-stuck", "door-good")),
        ])
        yield job.done
        out.update(broker=broker, job=job)

    tb.engine.process(driver(tb.engine))
    tb.engine.run()

    broker, job = out["broker"], out["job"]
    task = job.files[0]
    assert broker._m_watchdog_kills.count == 1
    assert job.state is JobState.FINISHED
    assert task.state is FileState.FINISHED
    assert task.attempts == 2  # stalled try + the failover retry
    assert task.source_used == "door-good"
    # The kill is journaled as a normal typed attempt failure, so crash
    # recovery replays the advanced alternatives cursor.
    fails = [r for r in broker.journal.records if r["kind"] == "attempt_fail"]
    assert len(fails) == 1
    assert fails[0]["error"] == StuckTransfer.__name__


def test_healthy_run_sees_zero_watchdog_kills():
    spec = synthetic_spec(seed=1, total_files=12, doors=2)
    spec["watchdog"] = True
    result = run_sched(spec, audit=True)
    assert result.all_finished
    assert result.audit_ok, result.audit_problems
    kills = result.testbed.engine.metrics.get("sched.watchdog.kills")
    assert kills is None or kills.total == 0
