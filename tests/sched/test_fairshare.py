"""Weighted fair share under contention.

A 3:1 weighted pair of tenants with identical demand, stopped at a
horizon while both still have work queued, must have been dispatched in
close to a 3:1 ratio — the stride scheduler's contract.
"""

from repro.sched import run_sched, synthetic_spec


def _finished_by_tenant(result):
    counts = {}
    for job in result.jobs:
        for task in job.files:
            if task.state.value == "FINISHED":
                counts[job.tenant] = counts.get(job.tenant, 0) + 1
    return counts


def test_gold_gets_three_times_bronze_under_contention():
    spec = synthetic_spec(
        seed=0,
        total_files=400,
        tenants={"gold": 3.0, "bronze": 1.0},
        doors=2,
    )
    result = run_sched(spec, horizon=5.0)
    counts = _finished_by_tenant(result)
    # Both made progress, neither drained (we stopped mid-contention).
    assert counts["gold"] > 0 and counts["bronze"] > 0
    total = sum(len(j.files) for j in result.jobs if j.tenant == "gold")
    assert counts["gold"] < total
    ratio = counts["gold"] / counts["bronze"]
    assert 2.2 <= ratio <= 3.8, f"fair-share ratio off: {ratio:.2f} ({counts})"


def test_equal_weights_split_evenly():
    spec = synthetic_spec(
        seed=1,
        total_files=200,
        tenants={"a": 1.0, "b": 1.0},
        doors=2,
    )
    result = run_sched(spec, horizon=4.0)
    counts = _finished_by_tenant(result)
    assert counts["a"] > 0 and counts["b"] > 0
    ratio = counts["a"] / counts["b"]
    assert 0.7 <= ratio <= 1.4, f"equal-share ratio off: {ratio:.2f} ({counts})"


def test_idle_tenant_does_not_starve_the_busy_one():
    """Fair share is work-conserving: with only one tenant submitting,
    it gets every slot regardless of weight."""
    spec = synthetic_spec(seed=2, total_files=60, tenants={"solo": 1.0})
    result = run_sched(spec)
    assert result.all_finished
    counts = _finished_by_tenant(result)
    assert counts == {"solo": 60}
