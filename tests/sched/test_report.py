"""The job report's determinism contract: same seed, same bytes."""

import json

from repro.sched import report_lines, run_sched, synthetic_spec


def _run_report(seed=3):
    spec = synthetic_spec(seed=seed, total_files=60, doors=2)
    result = run_sched(spec)
    assert result.all_finished
    return report_lines(result.jobs, result.testbed.engine, result.header)


def test_same_seed_produces_byte_identical_reports():
    assert _run_report() == _run_report()


def test_different_seed_produces_a_different_mix():
    a, b = _run_report(seed=3), _run_report(seed=4)
    assert a != b  # the synthetic generator actually varies with the seed


def test_report_shape_and_rollup():
    spec = synthetic_spec(
        seed=0, total_files=40, tenants={"gold": 3.0, "bronze": 1.0}, doors=2
    )
    result = run_sched(spec)
    lines = report_lines(result.jobs, result.testbed.engine, result.header)
    records = [json.loads(l) for l in lines]

    header, summary = records[0], records[-1]
    assert header["kind"] == "header"
    assert header["schema"] == "repro.sched.report/3"
    assert header["testbed"] == "ani-wan" and header["doors"] == 2

    jobs = [r for r in records if r["kind"] == "job"]
    files = [r for r in records if r["kind"] == "file"]
    assert sum(j["files"] for j in jobs) == len(files) == 40
    assert all(j["state"] == "FINISHED" for j in jobs)
    assert all(f["state"] == "FINISHED" for f in files)
    assert all(f["queue_wait"] is not None and f["queue_wait"] >= 0
               for f in files if not f["duplicate"])

    assert summary["kind"] == "summary"
    tenants = summary["tenants"]
    assert set(tenants) == {"bronze", "gold"}
    for t in tenants.values():
        assert t["finished"] == t["files"]
        assert t["bytes_finished"] > 0 and t["goodput_gbps"] > 0
    assert summary["events"] == result.testbed.engine.events_processed
