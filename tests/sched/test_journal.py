"""The write-ahead journal: replay semantics and file round-trips."""

import pytest

from repro.sched import (
    FileState,
    Journal,
    JobState,
    replay,
    run_sched,
    synthetic_spec,
)

MiB = 1 << 20


def _submit(journal, job_id, paths, t=0.0, tenant="t", deadline=None):
    journal.append(
        "submit", t=t, job_id=job_id, tenant=tenant, priority=0,
        deadline=deadline,
        files=[{"path": p, "size": MiB, "sources": ["door-0"]} for p in paths],
    )
    journal.append("admit", t=t, job_id=job_id)


def test_replay_reconstructs_terminal_outcomes():
    j = Journal()
    _submit(j, "job-1", ["/a", "/b", "/c"])
    j.append("attempt", t=0.1, job_id="job-1", index=0, door="door-0",
             session=7, attempts=1)
    j.append("finish", t=0.5, job_id="job-1", index=0, door="door-0")
    j.append("attempt", t=0.1, job_id="job-1", index=1, door="door-0",
             session=8, attempts=1)
    j.append("file_failed", t=0.6, job_id="job-1", index=1, error="X: boom")
    j.append("cancel", t=0.7, job_id="job-1", index=2, reason="user")

    state = replay(j.records)
    assert not state.clean and not state.resume
    (job,) = state.jobs
    assert job.state is JobState.FAILED  # one FAILED file, none pending
    assert [t.state for t in job.files] == [
        FileState.FINISHED, FileState.FAILED, FileState.CANCELED
    ]
    assert job.files[0].source_used == "door-0"
    assert job.files[1].error == "X: boom"
    assert job.finished_at == 0.7


def test_replay_rederives_dedupe_from_record_order():
    """Dedupe is not journaled — admission order reproduces it exactly,
    and the primary's replayed finish cascades to the duplicate."""
    j = Journal()
    _submit(j, "job-1", ["/same"])
    _submit(j, "job-2", ["/same", "/other"])
    j.append("attempt", t=0.1, job_id="job-1", index=0, door="door-0",
             session=1, attempts=1)
    j.append("finish", t=0.5, job_id="job-1", index=0, door="door-0")

    state = replay(j.records)
    j1, j2 = state.jobs
    dup = j2.files[0]
    assert dup.duplicate_of is j1.files[0]
    assert dup.state is FileState.FINISHED  # cascade, not a second transfer
    assert j2.files[1].state is FileState.SUBMITTED
    assert not state.resume  # a duplicate is never a resume candidate


def test_active_at_journal_end_is_a_resume_candidate():
    j = Journal()
    _submit(j, "job-1", ["/a"])
    j.append("attempt", t=0.1, job_id="job-1", index=0, door="door-0",
             session=42, attempts=1)

    state = replay(j.records)
    (task,) = state.resume
    assert task.state is FileState.ACTIVE
    assert task.last_session == 42 and task.last_door == "door-0"
    assert not state.clean


def test_attempt_fail_restores_the_alternatives_cursor():
    j = Journal()
    _submit(j, "job-1", ["/a"])
    j.append("attempt", t=0.1, job_id="job-1", index=0, door="door-0",
             session=1, attempts=1)
    j.append("attempt_fail", t=0.2, job_id="job-1", index=0, alt_cursor=1,
             attempts=1, error="ChannelLost")

    state = replay(j.records)
    task = state.jobs[0].files[0]
    assert task.state is FileState.SUBMITTED  # queued again, not resumed
    assert task.alt_cursor == 1 and task.attempts == 1
    assert not state.resume


def test_reject_cancels_the_submission_whole():
    j = Journal()
    j.append("submit", t=0.0, job_id="job-1", tenant="t", priority=0,
             deadline=None,
             files=[{"path": "/a", "size": MiB, "sources": []}])
    j.append("reject", t=0.0, job_id="job-1", reason="queue full")
    state = replay(j.records)
    assert state.jobs[0].state is JobState.CANCELED
    assert state.jobs[0].files[0].error == "queue full"


def test_checkpoint_marks_clean_and_cross_checks_the_snapshot():
    j = Journal()
    _submit(j, "job-1", ["/a"])
    j.append("attempt", t=0.1, job_id="job-1", index=0, door="door-0",
             session=1, attempts=1)
    j.append("finish", t=0.5, job_id="job-1", index=0, door="door-0")
    j.append("checkpoint", t=0.6, clean=True,
             state={"jobs": {"job-1": "FINISHED"}})
    assert replay(j.records).clean

    # A transition after the checkpoint means it no longer ends clean.
    j2 = Journal(records=list(j.records))
    _submit(j2, "job-2", ["/b"], t=0.7)
    j2.append("attempt", t=0.8, job_id="job-2", index=0, door="door-0",
              session=2, attempts=1)
    assert not replay(j2.records).clean

    # A snapshot that disagrees with replayed state is corruption.
    bad = list(j.records)
    bad[-1] = {"kind": "checkpoint", "t": 0.6, "clean": True,
               "state": {"jobs": {"job-1": "FAILED"}}}
    with pytest.raises(ValueError, match="checkpoint snapshot"):
        replay(bad)


def test_resumed_finish_marks_the_task_recovered():
    j = Journal()
    _submit(j, "job-1", ["/a"])
    j.append("attempt", t=0.1, job_id="job-1", index=0, door="door-0",
             session=1, attempts=1)
    j.append("finish", t=0.5, job_id="job-1", index=0, door="door-0",
             resumed_from=17)
    task = replay(j.records).jobs[0].files[0]
    assert task.recovered and task.resumed_from == 17
    assert task.state is FileState.FINISHED


def test_journal_file_roundtrip(tmp_path):
    """A run's journal written to disk loads back record-for-record and
    is self-contained (the spec rides along)."""
    path = str(tmp_path / "run.journal")
    spec = synthetic_spec(seed=2, total_files=8, doors=1)
    result = run_sched(spec, journal_path=path)
    assert result.all_finished

    loaded = Journal.load(path)
    assert loaded.records == result.journal.records
    assert loaded.spec() == spec
    state = loaded.replay()
    assert all(job.state is JobState.FINISHED for job in state.jobs)
    assert not state.resume


def test_unknown_record_kind_is_an_error():
    j = Journal()
    _submit(j, "job-1", ["/a"])
    j.append("mystery", t=0.1, job_id="job-1", index=0)
    with pytest.raises(ValueError, match="unknown journal record kind"):
        replay(j.records)
