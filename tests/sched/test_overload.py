"""Overload control: backpressure, shedding, budgets, brownout, compaction.

The robustness contract for the broker's front door: when demand exceeds
capacity the broker sheds *cooperatively* (whole jobs, deterministic
RETRY_AFTER hints, everything journaled and reported — never silently
lost), retry storms are capped at the tenant boundary, brownout degrades
instead of collapsing, and all of it survives crash recovery
byte-identically.
"""

import json

import pytest

from repro.apps.rftp import RftpClient, RftpServer
from repro.core.jitter import jitter_fraction, jittered
from repro.obs.registry import MetricsRegistry
from repro.sched import (
    FileState,
    JobState,
    Journal,
    OverloadConfig,
    TenantPolicy,
    TransferSpec,
    overload_spec,
    run_sched,
    stable_report_lines,
    summarize,
    synthetic_spec,
)
from repro.sched.journal import replay
from repro.sched.overload import (
    BROWNOUT,
    NORMAL,
    RECOVERING,
    OverloadController,
    TokenBucket,
)
from repro.sched.report import report_lines
from repro.testbeds import roce_lan

MiB = 1 << 20

#: Tight controls for the small shed tests: rate 20 files/s, burst 30,
#: no per-tenant bucket — the 10× spike sheds a few whole jobs fast.
TIGHT = {
    "global_rate": 20.0,
    "global_burst": 30.0,
    "tenant_rate": 0.0,
    "retry_after_cap": 6.0,
}


def wire(tb):
    server = RftpServer(tb)
    server.start(2811)
    return server, RftpClient(tb)


class _Clock:
    """Minimal engine stand-in for controller unit tests: a settable
    clock, a metrics registry, and a null tracer."""

    def __init__(self):
        self.now = 0.0
        self.metrics = MetricsRegistry()

    def trace(self, *args, **kwargs):
        pass


# -- config / bucket / jitter units -----------------------------------------------


def test_overload_config_validation():
    assert not OverloadConfig().enabled  # all-defaults config is inert
    assert OverloadConfig(global_rate=1.0).enabled
    assert OverloadConfig(retry_budget_ratio=0.5).enabled
    assert OverloadConfig(brownout_high=0.9).brownout_enabled
    assert not OverloadConfig().brownout_enabled
    with pytest.raises(ValueError):
        OverloadConfig(global_rate=-1.0)
    with pytest.raises(ValueError):
        OverloadConfig(global_burst=0.0)
    with pytest.raises(ValueError):
        OverloadConfig(retry_after_cap=0.1, retry_after_base=0.5)
    with pytest.raises(ValueError):
        OverloadConfig(retry_after_jitter=1.5)
    with pytest.raises(ValueError):
        OverloadConfig(brownout_high=0.5, brownout_low=0.9)
    with pytest.raises(ValueError):
        OverloadConfig(brownout_session_factor=0.0)
    with pytest.raises(ValueError, match="unknown overload keys"):
        OverloadConfig.from_spec({"global_rte": 1.0})


def test_token_bucket_refill_take_and_overdraft():
    bucket = TokenBucket(rate=10.0, burst=20.0, now=0.0)
    assert bucket.try_take(15, now=0.0)
    assert bucket.tokens == pytest.approx(5.0)
    # Not enough now; refill is lazy arithmetic from the clock.
    assert not bucket.try_take(10, now=0.0)
    assert bucket.try_take(10, now=1.0)  # 5 + 10/s * 1s = 15
    assert bucket.tokens == pytest.approx(5.0)
    # Overdraft may leave the level negative; the debt repays via refill.
    assert bucket.try_take(10, now=1.0, overdraft=6.0)
    assert bucket.tokens == pytest.approx(-5.0)
    assert bucket.time_until(5, now=1.0) == pytest.approx(1.0)
    assert bucket.time_until(0.0, now=3.0) == 0.0
    # Refill never exceeds the burst depth.
    bucket._refill(1000.0)
    assert bucket.tokens == pytest.approx(20.0)
    assert TokenBucket(0.0, 4.0).time_until(10, now=0.0) == float("inf")


def test_shared_jitter_helper_is_deterministic_and_bounded():
    f = jitter_fraction(7, "job-1", "/data/a", 3)
    assert f == jitter_fraction(7, "job-1", "/data/a", 3)
    assert 0.0 <= f < 1.0
    assert f != jitter_fraction(8, "job-1", "/data/a", 3)
    value = jittered(2.0, 0.5, 7, "job-1", "shed", 1)
    assert 2.0 <= value <= 3.0
    assert value == jittered(2.0, 0.5, 7, "job-1", "shed", 1)
    assert jittered(2.0, 0.0, 7, "x") == 2.0


# -- admission gates (controller units) -------------------------------------------


def _controller(clock=None, **kwargs):
    clock = clock or _Clock()
    return clock, OverloadController(clock, OverloadConfig(**kwargs), seed=0)


def test_priority_overdraft_admits_urgent_work():
    clock, ctrl = _controller(global_rate=10.0, global_burst=10.0,
                              priority_overdraft=0.5)
    assert ctrl.admit("a", "t", 10, 0, 0, priority=0, deadline=None) is None
    # Bucket empty: normal work sheds, priority overdraws (0.5 * 10).
    shed = ctrl.admit("b", "t", 4, 0, 0, priority=0, deadline=None)
    assert shed is not None and "global rate limit" in shed.reason
    assert shed.retry_after > 0
    assert ctrl.admit("c", "t", 4, 0, 0, priority=1, deadline=None) is None
    # The overdraft is a bounded privilege, not an exemption.
    deep = ctrl.admit("d", "t", 40, 0, 0, priority=1, deadline=None)
    assert deep is not None


def test_queue_bound_and_deadline_infeasible_shed():
    clock, ctrl = _controller(max_queued_files=50, global_rate=10.0,
                              global_burst=1000.0)
    shed = ctrl.admit("a", "t", 20, 0, 40, priority=0, deadline=None)
    assert shed is not None and "queue bound" in shed.reason
    # 40 backlog / 10 per s = 4s wait > the 2s deadline: shed now
    # rather than admit work that must die of old age in the queue.
    shed = ctrl.admit("b", "t", 5, 0, 40, priority=0, deadline=2.0)
    assert shed is not None and "deadline infeasible" in shed.reason
    assert ctrl.admit("c", "t", 5, 0, 40, priority=0, deadline=10.0) is None


def test_retry_after_doubles_per_shed_and_spans_incarnations():
    clock, ctrl = _controller(global_rate=10.0, retry_after_base=1.0,
                              retry_after_cap=100.0, retry_after_jitter=0.0)
    first = ctrl.retry_after("job-1", need=1.0)
    # A resubmission incarnation shares the base id's shed count.
    second = ctrl.retry_after("job-1~r1", need=1.0)
    third = ctrl.retry_after("job-1~r2", need=1.0)
    assert first == pytest.approx(1.0)
    assert second == pytest.approx(2.0)
    assert third == pytest.approx(4.0)
    # Another job's count is independent.
    assert ctrl.retry_after("job-2", need=1.0) == pytest.approx(1.0)


def test_retry_budget_spend_and_replenish():
    clock, ctrl = _controller(retry_budget_ratio=0.5, retry_budget_burst=2.0)
    assert ctrl.allow_retry("t")
    assert ctrl.allow_retry("t")
    assert not ctrl.allow_retry("t")  # dry: deny, fail fast
    ctrl.note_success("t")
    ctrl.note_success("t")  # 2 successes * 0.5 = one retry earned
    assert ctrl.allow_retry("t")
    assert not ctrl.allow_retry("t")
    denied = clock.metrics.get("sched.overload.retry_denied")
    assert denied.count == 2
    # Replenishment caps at the burst.
    for _ in range(50):
        ctrl.note_success("t")
    assert ctrl.retry_budget("t") == pytest.approx(2.0)


# -- brownout FSM ------------------------------------------------------------------


def test_brownout_fsm_watermarks_and_hysteresis():
    clock, ctrl = _controller(brownout_high=0.9, brownout_low=0.5,
                              brownout_hold=2.0, brownout_park_tenants=1)
    weights = {"gold": 3.0, "bronze": 1.0}
    ctrl.observe(8, 10, 0.0, weights)
    assert ctrl.state == NORMAL  # 0.8 < high watermark
    ctrl.observe(9, 10, 0.0, weights)
    assert ctrl.state == BROWNOUT
    assert ctrl.parked_tenants == ("bronze",)  # lowest weight first
    assert ctrl.tenant_parked("bronze") and not ctrl.tenant_parked("gold")
    assert ctrl.door_session_cap(4) == 2  # shrunk, never below one
    assert ctrl.suspend_ride_alongs()
    # Between the watermarks: still browned out (hysteresis).
    ctrl.observe(7, 10, 0.0, weights)
    assert ctrl.state == BROWNOUT
    # Below low: start the recovery dwell.
    clock.now = 1.0
    ctrl.observe(4, 10, 0.0, weights)
    assert ctrl.state == RECOVERING
    assert ctrl.door_session_cap(4) == 4  # cap only shrinks in BROWNOUT
    # Hot again before the dwell elapses: straight back to BROWNOUT.
    clock.now = 2.0
    ctrl.observe(10, 10, 0.0, weights)
    assert ctrl.state == BROWNOUT
    clock.now = 3.0
    ctrl.observe(2, 10, 0.0, weights)
    assert ctrl.state == RECOVERING
    # A sample between the watermarks restarts the dwell.
    clock.now = 4.5
    ctrl.observe(7, 10, 0.0, weights)
    clock.now = 6.0
    ctrl.observe(2, 10, 0.0, weights)
    assert ctrl.state == RECOVERING  # only 1.5s of calm since restart
    clock.now = 6.7
    ctrl.observe(2, 10, 0.0, weights)
    assert ctrl.state == NORMAL
    assert ctrl.parked_tenants == ()
    entries = clock.metrics.get("sched.overload.brownout_entries")
    exits = clock.metrics.get("sched.overload.brownout_exits")
    # Relapse from RECOVERING is not a fresh entry — one episode.
    assert entries.count == 1 and exits.count == 1


def test_brownout_pool_watermark_and_parked_tenant_shed():
    clock, ctrl = _controller(pool_high=0.9, pool_low=0.3,
                              brownout_park_tenants=1)
    weights = {"gold": 3.0, "bronze": 1.0}
    ctrl.observe(0, 10, 0.95, weights)
    assert ctrl.state == BROWNOUT
    shed = ctrl.admit("b1", "bronze", 5, 0, 0, priority=0, deadline=None)
    assert shed is not None and "parked" in shed.reason
    # Ride-along suspension: duplicates shed while browned out.
    shed = ctrl.admit("g1", "gold", 5, 2, 0, priority=0, deadline=None)
    assert shed is not None and "ride-along" in shed.reason
    assert ctrl.admit("g2", "gold", 5, 0, 0, priority=0, deadline=None) is None
    # Never parks every tenant.
    clock2, ctrl2 = _controller(pool_high=0.9, brownout_park_tenants=5)
    ctrl2.observe(0, 10, 0.95, weights)
    assert len(ctrl2.parked_tenants) == 1


def test_brownout_broker_degrades_and_recovers():
    """End to end on a real broker: aggressive watermarks enter brownout
    at first dispatch, the low-weight tenant's submission sheds, and the
    recheck timer re-promotes to NORMAL after the dwell (a fully-parked
    broker must not deadlock in RECOVERING)."""
    tb = roce_lan()
    server, client = wire(tb)
    overload = OverloadConfig(brownout_high=0.2, brownout_low=0.1,
                              brownout_hold=0.5, brownout_park_tenants=1)
    out = {}

    def driver(env):
        broker = yield client.open_broker(
            doors=1, overload=overload,
            tenants={"gold": TenantPolicy(weight=3.0),
                     "bronze": TenantPolicy(weight=1.0)},
        )
        gold = broker.submit(
            "gold", [TransferSpec(f"/data/g{i}", 8 * MiB) for i in range(8)]
        )
        # Poll until dispatch drives the FSM into BROWNOUT (the FSM is
        # event-driven, sampled at dispatch/completion points).
        while broker.overload.state != BROWNOUT:
            yield env.timeout(0.001)
        out["cap_during"] = broker.overload.door_session_cap(4)
        bronze = broker.submit("bronze", [TransferSpec("/data/b0", MiB)])
        yield gold.done
        out.update(broker=broker, gold=gold, bronze=bronze)

    tb.engine.process(driver(tb.engine))
    tb.engine.run()
    broker = out["broker"]
    assert out["cap_during"] == 2
    assert out["gold"].state is JobState.FINISHED
    bronze = out["bronze"]
    assert bronze.shed and bronze.state is JobState.CANCELED
    assert "parked" in bronze.shed_reason
    assert bronze.retry_after > 0
    # The recheck timer drove RECOVERING -> NORMAL after the dwell.
    assert broker.overload.state == NORMAL
    assert broker.overload.parked_tenants == ()
    metrics = tb.engine.metrics
    assert metrics.get("sched.overload.brownout_entries").count >= 1
    assert metrics.get("sched.overload.brownout_exits").count >= 1


# -- broker integration: shedding, budgets, reports --------------------------------


def test_broker_sheds_whole_job_with_journaled_retry_after():
    tb = roce_lan()
    server, client = wire(tb)
    overload = OverloadConfig(global_rate=1.0, global_burst=4.0,
                              retry_after_jitter=0.5)
    out = {}

    def driver(env):
        broker = yield client.open_broker(doors=1, overload=overload)
        admitted = broker.submit(
            "t", [TransferSpec(f"/data/a{i}", MiB) for i in range(4)]
        )
        shed = broker.submit(
            "t", [TransferSpec(f"/data/b{i}", MiB) for i in range(4)]
        )
        assert shed.done.triggered  # shed is immediate and whole
        yield admitted.done
        out.update(broker=broker, admitted=admitted, shed=shed)

    tb.engine.process(driver(tb.engine))
    tb.engine.run()
    shed, admitted = out["shed"], out["admitted"]
    assert admitted.state is JobState.FINISHED
    assert shed.state is JobState.CANCELED and shed.shed
    assert shed.shed_reason == "global rate limit"
    assert shed.retry_after is not None and shed.retry_after > 0
    assert all(t.state is FileState.CANCELED for t in shed.files)
    assert all(t.error == "shed: global rate limit" for t in shed.files)
    recs = [r for r in out["broker"].journal.records if r["kind"] == "shed"]
    assert len(recs) == 1
    assert recs[0]["job_id"] == shed.job_id
    assert recs[0]["reason"] == "global rate limit"
    assert recs[0]["retry_after"] == pytest.approx(shed.retry_after)
    metrics = tb.engine.metrics
    assert metrics.get("sched.overload.shed_jobs").count == 1
    assert metrics.get("sched.overload.shed_files").total == 4


def test_retry_budget_exhaustion_fails_fast_with_reason():
    """Attempt faults beyond the budget go terminal immediately — the
    retry-storm amplifier is cut instead of parking ever more timers."""
    tb = roce_lan()
    server, client = wire(tb)
    overload = OverloadConfig(retry_budget_ratio=0.25,
                              retry_budget_burst=1.0)
    out = {}

    def driver(env):
        broker = yield client.open_broker(doors=1, overload=overload)
        broker.attempt_fault_hook = lambda now: True  # every attempt dies
        job = broker.submit("t", [TransferSpec("/data/a", MiB)])
        yield job.done
        out.update(broker=broker, job=job)

    tb.engine.process(driver(tb.engine))
    tb.engine.run()
    job = out["job"]
    task = job.files[0]
    assert job.state is JobState.FAILED
    assert task.state is FileState.FAILED
    # One retry allowed by the burst, then the budget denies: 2 attempts,
    # not max_attempts (4).
    assert task.attempts == 2
    assert "InjectedAttemptFault" in task.error
    assert task.error.endswith("(retry budget exhausted)")
    assert tb.engine.metrics.get("sched.overload.retry_denied").count == 1


def test_resubmit_same_job_id_dedupes_in_flight_and_after_recovery():
    tb = roce_lan()
    server, client = wire(tb)
    out = {}

    def driver(env):
        broker = yield client.open_broker(doors=1)
        job = broker.submit("t", [TransferSpec("/data/a", MiB)],
                            job_id="dup-1")
        again = broker.submit("t", [TransferSpec("/data/a", MiB)],
                              job_id="dup-1")
        assert again is job  # same incarnation, no second admission
        yield job.done
        out.update(broker=broker, job=job)

    tb.engine.process(driver(tb.engine))
    tb.engine.run()
    broker = out["broker"]
    assert len(broker.jobs) == 1
    admits = [r for r in broker.journal.records if r["kind"] == "admit"]
    assert len(admits) == 1


def test_resubmission_dedupes_against_journaled_incarnation(tmp_path):
    """After crash recovery, a resubmitted job id that already reached
    the journal returns the replayed job instead of double-admitting."""
    spec = synthetic_spec(seed=0, total_files=8, doors=1)
    path = str(tmp_path / "dedupe.journal")
    first = run_sched(spec, journal_path=path)
    assert first.all_finished
    recovered = run_sched(None, recover=path)
    broker = recovered.broker
    job = broker.jobs[0]
    assert job.recovered
    resubmitted = broker.submit(
        "bronze",
        [TransferSpec(t.path, t.size) for t in job.files],
        job_id=job.job_id,
    )
    assert resubmitted is job
    admits = [r for r in broker.journal.records if r["kind"] == "admit"]
    assert len([a for a in admits if a["job_id"] == job.job_id]) == 1


# -- the open-loop overload scenario ----------------------------------------------


def _tight_spec(total=200, resubmit=0, crash=None):
    spec = overload_spec(seed=0, total_files=total, resubmit_limit=resubmit,
                         overload=dict(TIGHT))
    if crash is not None:
        spec["faults"] = {"broker_crashes": [crash]}
    return spec


def test_overload_spike_sheds_reports_and_stays_leak_free():
    """The shed-heavy campaign: sheds happen, every one lands in the
    JSONL report with a reason and RETRY_AFTER hint, admitted work is
    byte-exact, and no broker/sink state leaks afterwards."""
    result = run_sched(_tight_spec(resubmit=2), audit=True)
    assert result.shed_jobs > 0
    assert result.all_resolved
    assert result.audit_ok, result.audit_problems[:3]
    assert result.leaks == []
    records = [
        json.loads(line)
        for line in report_lines(result.jobs, result.testbed.engine, {})
    ]
    shed_lines = [
        r for r in records if r["kind"] == "job" and r.get("shed")
    ]
    assert len(shed_lines) == result.shed_jobs
    for line in shed_lines:
        assert line["shed_reason"]
        assert line["retry_after"] is not None and line["retry_after"] > 0
    rollup = summarize(result.jobs, result.testbed.engine)
    assert sum(
        t["shed_jobs"] for t in rollup["tenants"].values()
    ) == result.shed_jobs
    # Sink-side transients are back at baseline (session history bounded,
    # nothing parked in reassembly).
    for eng in result.server.middleware.sink_engines.values():
        assert eng.active_sessions() == 0
        assert len(eng._retired) <= result.server.config.sink_session_history
        assert eng.reassembly.sessions_with_parked() == []


def test_overload_run_is_deterministic():
    a = run_sched(_tight_spec(resubmit=2), audit=True)
    b = run_sched(_tight_spec(resubmit=2), audit=True)
    assert stable_report_lines(a.jobs) == stable_report_lines(b.jobs)
    hints_a = [j.retry_after for j in a.jobs if j.shed]
    hints_b = [j.retry_after for j in b.jobs if j.shed]
    assert hints_a == hints_b and len(hints_a) == a.shed_jobs


def test_resubmission_honors_retry_after_and_converges():
    """Shed jobs come back as ``<base>~rN`` incarnations after their
    hint; every job ends FINISHED or shed — nothing lingers."""
    result = run_sched(_tight_spec(resubmit=2), audit=True)
    resubs = [j for j in result.jobs if "~r" in j.job_id]
    assert resubs, "expected resubmission incarnations"
    for job in resubs:
        base_id = job.job_id.split("~r", 1)[0]
        base = next(j for j in result.jobs if j.job_id == base_id)
        assert base.shed
        # The incarnation was submitted after the base's hint elapsed.
        assert job.submitted_at >= base.finished_at + base.retry_after - 1e-9
    assert any(j.state is JobState.FINISHED for j in resubs)
    assert result.all_resolved


def test_shed_jobs_stay_shed_across_standalone_recover(tmp_path):
    path = str(tmp_path / "shed.journal")
    first = run_sched(_tight_spec(resubmit=1), journal_path=path, audit=True)
    assert first.shed_jobs > 0
    recovered = run_sched(None, recover=path)
    by_id = {j.job_id: j for j in recovered.jobs}
    for job in first.jobs:
        twin = by_id[job.job_id]
        assert twin.shed == job.shed
        if job.shed:
            assert twin.state is JobState.CANCELED
            assert twin.shed_reason == job.shed_reason
            assert twin.retry_after == pytest.approx(job.retry_after)
            assert all(
                t.error == f"shed: {job.shed_reason}" for t in twin.files
            )
    assert stable_report_lines(recovered.jobs) == stable_report_lines(
        first.jobs
    )


def test_crashed_shed_run_matches_uncrashed_byte_for_byte(tmp_path):
    """Crash the broker mid-transfer after the admission wave: shed
    jobs stay shed through recovery and the stable report lines are
    byte-identical to the run that never crashed."""
    base = run_sched(_tight_spec(), audit=True)
    assert base.shed_jobs > 0
    crashed = run_sched(
        _tight_spec(crash=5.2), audit=True,
        recover=str(tmp_path / "crash.journal"),
    )
    assert crashed.recoveries == 1
    assert crashed.audit_ok, crashed.audit_problems[:3]
    assert crashed.shed_jobs == base.shed_jobs
    assert crashed.leaks == []
    assert stable_report_lines(crashed.jobs) == stable_report_lines(
        base.jobs
    )


def test_resubmit_across_crash_goes_terminal_with_reasons(tmp_path):
    """Crash while resubmission incarnations are still arriving: the
    journal replays shed records (RETRY_AFTER counts survive), pending
    incarnations dedupe, and every job lands in a *terminal, reported*
    state.  The crash kills a wave of in-flight sessions at once, so
    some jobs legitimately exhaust the retry budget and FAIL — the
    contract is honesty (terminal + reason), not universal success."""
    result = run_sched(
        _tight_spec(resubmit=2, crash=3.0), audit=True,
        recover=str(tmp_path / "resub.journal"),
    )
    assert result.recoveries == 1
    assert result.shed_jobs > 0
    assert result.audit_ok, result.audit_problems[:3]
    assert result.leaks == []
    for job in result.jobs:
        assert job.state in (
            JobState.FINISHED, JobState.FAILED, JobState.CANCELED
        )
        if job.state is JobState.CANCELED:
            assert job.shed
    budget_failed = [j for j in result.jobs if j.state is JobState.FAILED]
    assert budget_failed  # the crash wave drained the budget
    for job in budget_failed:
        failed = [t for t in job.files if t.state is FileState.FAILED]
        assert failed
        assert all(
            t.error.endswith("(retry budget exhausted)") for t in failed
        )
    ids = [j.job_id for j in result.jobs]
    assert len(ids) == len(set(ids))  # no double-admitted incarnation


# -- journal compaction (bounded record list) --------------------------------------


def test_checkpoint_snapshot_compacts_and_recovers_identically(tmp_path):
    """Satellite: the journal's in-memory list is bounded by compaction
    at a snapshot checkpoint — replaying the compacted journal restores
    the same state as replaying the full log, and a standalone recover
    continues identically from either file."""
    spec = synthetic_spec(seed=0, total_files=24, doors=1)
    spec["drain_at"] = 0.9
    full_path = str(tmp_path / "full.journal")
    result = run_sched(spec, journal_path=full_path)
    assert result.drained and not result.all_finished
    checkpoints = [
        r for r in result.journal.records if r["kind"] == "checkpoint"
    ]
    assert checkpoints and checkpoints[-1]["snapshot"]

    compact_path = str(tmp_path / "compact.journal")
    with open(full_path) as src, open(compact_path, "w") as dst:
        dst.write(src.read())
    journal = Journal.load(compact_path, mirror=True)
    before = len(journal.records)
    dropped = journal.compact()
    assert dropped > 0
    assert len(journal.records) == before - dropped
    assert journal.spec() is not None  # spec records survive compaction
    journal.close()
    # On-disk mirror was rewritten to match the compacted list.
    reloaded = Journal.load(compact_path)
    assert len(reloaded.records) == len(journal.records)

    full_state = replay(Journal.load(full_path).records)
    compact_state = replay(reloaded.records)
    assert stable_report_lines(compact_state.jobs) == stable_report_lines(
        full_state.jobs
    )
    assert compact_state.clean == full_state.clean

    from_full = run_sched(None, recover=full_path)
    from_compact = run_sched(None, recover=compact_path)
    assert from_compact.all_finished
    assert stable_report_lines(from_compact.jobs) == stable_report_lines(
        from_full.jobs
    )


def test_checkpoint_compact_spec_flag_bounds_live_journal(tmp_path):
    spec = synthetic_spec(seed=0, total_files=24, doors=1)
    spec["drain_at"] = 0.9
    spec["checkpoint_compact"] = True
    path = str(tmp_path / "auto.journal")
    result = run_sched(spec, journal_path=path)
    assert result.drained
    kinds = [r["kind"] for r in result.journal.records]
    # The replayed prefix is gone: spec, then the snapshot checkpoint.
    assert kinds[0] == "spec" and kinds[1] == "checkpoint"
    recovered = run_sched(None, recover=path)
    assert recovered.all_finished


# -- inertness ---------------------------------------------------------------------


def test_unarmed_overload_builds_no_controller():
    """No OverloadConfig (or an all-default one) must leave the broker
    byte-identical to the pre-overload code path: no controller, no new
    journal records, no new metric families."""
    tb = roce_lan()
    server, client = wire(tb)
    out = {}

    def driver(env):
        broker = yield client.open_broker(doors=1)
        inert = yield client.open_broker(doors=1, port=2811,
                                         overload=OverloadConfig())
        out.update(broker=broker, inert=inert)

    tb.engine.process(driver(tb.engine))
    tb.engine.run()
    assert out["broker"].overload is None
    assert out["inert"].overload is None
    assert tb.engine.metrics.get("sched.overload.shed_jobs") is None
