"""Orderly multi-source failover: a crashed door's files finish through
the alternatives, walked in preference order."""

from repro.sched import run_sched


def _spec(crash_at):
    files = [
        {"path": f"/data/f{i:03d}", "size": 1 << 20,
         "sources": ["door-0", "door-1"]}
        for i in range(16)
    ]
    return {
        "testbed": "roce-lan",
        "seed": 1,
        "doors": 2,
        "max_active": 4,
        "tenants": {"t": {"weight": 1.0}},
        "faults": {"seed": 1, "source_crashes": [crash_at]},
        "jobs": [{"tenant": "t", "job_id": "job-1", "files": files}],
    }


def test_source_crash_fails_over_to_the_next_door():
    result = run_sched(_spec(crash_at=3e-3), horizon=60.0)
    assert result.all_finished
    tasks = [t for j in result.jobs for t in j.files]
    # The crash landed mid-job: at least one file needed a second attempt
    # and finished through the alternative door, in preference order.
    retried = [t for t in tasks if t.attempts > 1]
    assert retried, "crash did not interrupt any transfer"
    assert all(t.source_used == "door-1" for t in retried)
    assert all(t.error is None for t in tasks)
    # Files the crash never touched stayed on their preferred door.
    assert any(t.source_used == "door-0" for t in tasks)
    # Enough failures landed together to trip door-0's broker breaker,
    # quarantining it while the survivors drained through door-1.
    door0 = result.broker.doors["door-0"]
    assert door0.breaker.trips >= 1


def test_failover_is_deterministic():
    a = run_sched(_spec(crash_at=3e-3), horizon=60.0)
    b = run_sched(_spec(crash_at=3e-3), horizon=60.0)
    states_a = [(t.path, t.state.value, t.attempts, t.source_used)
                for j in a.jobs for t in j.files]
    states_b = [(t.path, t.state.value, t.attempts, t.source_used)
                for j in b.jobs for t in j.files]
    assert states_a == states_b
    assert a.testbed.engine.events_processed == b.testbed.engine.events_processed
