"""Broker mechanics: dedupe, admission control, and the job state model."""

import pytest

from repro.apps.rftp import RftpClient, RftpServer
from repro.sched import (
    BrokerConfig,
    FileState,
    JobState,
    TenantPolicy,
    TransferSpec,
)
from repro.testbeds import roce_lan

MiB = 1 << 20


def wire(tb):
    server = RftpServer(tb)
    server.start(2811)
    return server, RftpClient(tb)


def test_duplicate_destination_rides_along_on_the_primary():
    """Two submissions for one destination path transfer ONCE; the
    duplicate mirrors the primary's outcome without its own session."""
    tb = roce_lan()
    server, client = wire(tb)
    out = {}

    def driver(env):
        broker = yield client.open_broker(doors=1)
        j1 = broker.submit("t", [TransferSpec("/data/a", 2 * MiB)])
        j2 = broker.submit("t", [TransferSpec("/data/a", 2 * MiB),
                                 TransferSpec("/data/b", 2 * MiB)])
        yield j1.done
        yield j2.done
        out.update(broker=broker, j1=j1, j2=j2)

    tb.engine.process(driver(tb.engine))
    tb.engine.run()
    j1, j2, broker = out["j1"], out["j2"], out["broker"]
    assert j1.state is JobState.FINISHED and j2.state is JobState.FINISHED
    dup = j2.files[0]
    assert dup.duplicate_of is j1.files[0]
    assert dup.attempts == 0  # never transferred on its own
    assert dup.state is FileState.FINISHED
    assert broker._m_dedup_hits.count == 1
    # The primary and the non-duplicate file each ran exactly once.
    assert j1.files[0].attempts == 1 and j2.files[1].attempts == 1


def test_dedupe_window_closes_when_the_primary_finishes():
    """Back-to-back submissions for the same path after the first
    finished are fresh transfers, not dedupe hits (the file may have
    changed; also the seam for the sid-reuse marker guard)."""
    tb = roce_lan()
    server, client = wire(tb)
    out = {}

    def driver(env):
        broker = yield client.open_broker(doors=1)
        j1 = broker.submit("t", [TransferSpec("/data/a", 2 * MiB)])
        yield j1.done
        j2 = broker.submit("t", [TransferSpec("/data/a", 2 * MiB)])
        yield j2.done
        out.update(broker=broker, j1=j1, j2=j2)

    tb.engine.process(driver(tb.engine))
    tb.engine.run()
    assert out["broker"]._m_dedup_hits.count == 0
    assert out["j2"].files[0].attempts == 1
    assert out["j2"].state is JobState.FINISHED


def test_admission_control_rejects_overflow_submissions_whole():
    tb = roce_lan()
    server, client = wire(tb)
    out = {}

    def driver(env):
        broker = yield client.open_broker(
            doors=1,
            tenants={"t": TenantPolicy(max_queued=2)},
        )
        files = [TransferSpec(f"/data/f{i}", MiB) for i in range(3)]
        rejected = broker.submit("t", files)
        # Rejection is immediate and whole: the event is already up.
        assert rejected.done.triggered
        out["rejected"] = rejected
        accepted = broker.submit("t", files[:2])
        yield accepted.done
        out.update(broker=broker, accepted=accepted)

    tb.engine.process(driver(tb.engine))
    tb.engine.run()
    rejected, accepted = out["rejected"], out["accepted"]
    assert rejected.state is JobState.CANCELED
    assert all(t.state is FileState.CANCELED for t in rejected.files)
    assert all("queue full" in t.error for t in rejected.files)
    assert accepted.state is JobState.FINISHED
    assert out["broker"]._m_jobs_rejected.count == 1


def test_sessions_reuse_negotiation_on_a_door():
    """After a door's first file, later files skip the link-level
    negotiation: no extra QPs, and the link is flagged negotiated."""
    tb = roce_lan()
    server, client = wire(tb)
    out = {}

    def driver(env):
        broker = yield client.open_broker(doors=1)
        qps_after_open = len(tb.src_dev.qps)
        job = broker.submit(
            "t", [TransferSpec(f"/data/f{i}", MiB) for i in range(6)]
        )
        yield job.done
        out["job"] = job
        out["same_qps"] = len(tb.src_dev.qps) == qps_after_open
        out["negotiated"] = next(iter(broker.doors.values())).link._negotiated

    tb.engine.process(driver(tb.engine))
    tb.engine.run()
    assert out["job"].state is JobState.FINISHED
    assert out["same_qps"]  # six files, one connection set
    assert out["negotiated"]


def test_broker_and_policy_validation():
    with pytest.raises(ValueError):
        TenantPolicy(weight=0)
    with pytest.raises(ValueError):
        TenantPolicy(max_inflight=0)
    with pytest.raises(ValueError):
        BrokerConfig(max_active=0)
    with pytest.raises(ValueError):
        BrokerConfig(max_attempts=0)
    with pytest.raises(ValueError):
        TransferSpec("", MiB)
    with pytest.raises(ValueError):
        TransferSpec("/data/a", 0)


def test_retry_and_watchdog_config_validation():
    with pytest.raises(ValueError):
        BrokerConfig(retry_backoff_factor=0.5)
    with pytest.raises(ValueError):
        BrokerConfig(retry_backoff=2.0, retry_backoff_cap=1.0)
    with pytest.raises(ValueError):
        BrokerConfig(retry_jitter=1.5)
    with pytest.raises(ValueError):
        BrokerConfig(retry_jitter=-0.1)
    with pytest.raises(ValueError):
        BrokerConfig(watchdog_rto_multiplier=0)
    with pytest.raises(ValueError):
        BrokerConfig(watchdog_min_interval=0)


def test_retry_jitter_is_deterministic_per_task_and_attempt():
    from repro.sched.broker import _retry_jitter_fraction

    a = _retry_jitter_fraction(0, "job-1", "/x", 1)
    assert a == _retry_jitter_fraction(0, "job-1", "/x", 1)
    assert 0.0 <= a < 1.0
    # Any coordinate change de-synchronises the retry.
    assert a != _retry_jitter_fraction(0, "job-1", "/x", 2)
    assert a != _retry_jitter_fraction(0, "job-1", "/y", 1)
    assert a != _retry_jitter_fraction(7, "job-1", "/x", 1)


def test_retry_backoff_is_capped_exponential():
    from repro.sched.jobs import Job

    tb = roce_lan()
    server, client = wire(tb)
    cfg = BrokerConfig(retry_backoff=0.5, retry_backoff_factor=2.0,
                       retry_backoff_cap=3.0, retry_jitter=0.0)
    out = {}

    def driver(env):
        out["broker"] = yield client.open_broker(doors=1, broker_config=cfg)

    tb.engine.process(driver(tb.engine))
    tb.engine.run()
    broker = out["broker"]
    job = Job.build("job-x", "t", [TransferSpec("/data/a", MiB)])
    task = job.files[0]
    delays = []
    for attempt in (1, 2, 3, 4, 5):
        task.attempts = attempt
        delays.append(broker._retry_delay(task))
    assert delays == [0.5, 1.0, 2.0, 3.0, 3.0]  # x2 growth, capped at 3

    # With jitter on, the delay stretches by at most the jitter fraction
    # and is reproducible (seeded, not drawn from a shared RNG).
    broker.config = BrokerConfig(retry_backoff=0.5, retry_jitter=0.25)
    task.attempts = 1
    d1 = broker._retry_delay(task)
    assert 0.5 <= d1 <= 0.5 * 1.25
    assert d1 == broker._retry_delay(task)


class _FailingDoor:
    """Every attempt dies shortly after dispatch with a typed error."""

    name = "door-bad"

    def __init__(self, engine):
        self.engine = engine
        self.active = 0
        self.max_sessions = 4
        self.link = None
        self.breaker = None

    def admissible(self, now):
        return True

    def transfer(self, task, session_id=None):
        from repro.core.errors import TransferError
        from repro.sim.events import Event

        event = Event(self.engine)

        def _die():
            yield self.engine.timeout(0.01)
            if not event.triggered:
                event.fail(TransferError(session_id or 0, "boom"))

        self.engine.process(_die())
        return event


def test_cancel_unparks_a_file_waiting_in_retry_backoff():
    """Regression: canceling a job whose file sits in a retry backoff
    timer must cancel it NOW (timer cancelled, cancel journaled) — not
    leak it parked until the timer fires."""
    from repro.sched.broker import TransferBroker

    tb = roce_lan()
    cfg = BrokerConfig(retry_backoff=60.0, retry_backoff_cap=60.0,
                       retry_jitter=0.0, max_attempts=3, breaker_failures=5)
    out = {}

    def driver(env):
        broker = TransferBroker(tb.engine, [_FailingDoor(tb.engine)], cfg)
        job = broker.submit("t", [TransferSpec("/data/x", MiB)])
        yield tb.engine.timeout(1.0)  # attempt failed, file now parked
        assert len(broker._parked) == 1
        assert broker._tenants["t"].parked == 1
        assert broker.cancel_job(job, reason="user says stop")
        out.update(broker=broker, job=job)
        yield job.done

    tb.engine.process(driver(tb.engine))
    tb.engine.run()

    broker, job = out["broker"], out["job"]
    assert job.state is JobState.CANCELED
    assert job.files[0].state is FileState.CANCELED
    assert job.files[0].error == "user says stop"
    assert broker._parked == {}
    assert broker._tenants["t"].parked == 0
    # The cancel hit the journal and no further attempt ever ran.
    kinds = [r["kind"] for r in broker.journal.records]
    assert kinds.count("cancel") == 1
    assert kinds.count("attempt") == 1


def test_deadline_cancels_whatever_files_remain():
    tb = roce_lan()
    server, client = wire(tb)
    out = {}

    def driver(env):
        broker = yield client.open_broker(doors=1)
        job = broker.submit(
            "t", [TransferSpec(f"/data/f{i}", 8 * MiB) for i in range(4)],
            deadline=1e-6,  # expires before any transfer can land
        )
        yield job.done
        out.update(broker=broker, job=job)

    tb.engine.process(driver(tb.engine))
    tb.engine.run()

    broker, job = out["broker"], out["job"]
    assert job.state is JobState.CANCELED
    assert all(t.state is FileState.CANCELED for t in job.files)
    assert all("deadline exceeded" in t.error for t in job.files)
    assert broker._m_deadline_cancels.count == 1


def test_submit_rejects_nonpositive_deadline():
    tb = roce_lan()
    server, client = wire(tb)
    out = {}

    def driver(env):
        broker = yield client.open_broker(doors=1)
        with pytest.raises(ValueError):
            broker.submit("t", [TransferSpec("/data/a", MiB)], deadline=0)
        out["ok"] = True

    tb.engine.process(driver(tb.engine))
    tb.engine.run()
    assert out["ok"]
