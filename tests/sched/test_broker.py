"""Broker mechanics: dedupe, admission control, and the job state model."""

import pytest

from repro.apps.rftp import RftpClient, RftpServer
from repro.sched import (
    BrokerConfig,
    FileState,
    JobState,
    TenantPolicy,
    TransferSpec,
)
from repro.testbeds import roce_lan

MiB = 1 << 20


def wire(tb):
    server = RftpServer(tb)
    server.start(2811)
    return server, RftpClient(tb)


def test_duplicate_destination_rides_along_on_the_primary():
    """Two submissions for one destination path transfer ONCE; the
    duplicate mirrors the primary's outcome without its own session."""
    tb = roce_lan()
    server, client = wire(tb)
    out = {}

    def driver(env):
        broker = yield client.open_broker(doors=1)
        j1 = broker.submit("t", [TransferSpec("/data/a", 2 * MiB)])
        j2 = broker.submit("t", [TransferSpec("/data/a", 2 * MiB),
                                 TransferSpec("/data/b", 2 * MiB)])
        yield j1.done
        yield j2.done
        out.update(broker=broker, j1=j1, j2=j2)

    tb.engine.process(driver(tb.engine))
    tb.engine.run()
    j1, j2, broker = out["j1"], out["j2"], out["broker"]
    assert j1.state is JobState.FINISHED and j2.state is JobState.FINISHED
    dup = j2.files[0]
    assert dup.duplicate_of is j1.files[0]
    assert dup.attempts == 0  # never transferred on its own
    assert dup.state is FileState.FINISHED
    assert broker._m_dedup_hits.count == 1
    # The primary and the non-duplicate file each ran exactly once.
    assert j1.files[0].attempts == 1 and j2.files[1].attempts == 1


def test_dedupe_window_closes_when_the_primary_finishes():
    """Back-to-back submissions for the same path after the first
    finished are fresh transfers, not dedupe hits (the file may have
    changed; also the seam for the sid-reuse marker guard)."""
    tb = roce_lan()
    server, client = wire(tb)
    out = {}

    def driver(env):
        broker = yield client.open_broker(doors=1)
        j1 = broker.submit("t", [TransferSpec("/data/a", 2 * MiB)])
        yield j1.done
        j2 = broker.submit("t", [TransferSpec("/data/a", 2 * MiB)])
        yield j2.done
        out.update(broker=broker, j1=j1, j2=j2)

    tb.engine.process(driver(tb.engine))
    tb.engine.run()
    assert out["broker"]._m_dedup_hits.count == 0
    assert out["j2"].files[0].attempts == 1
    assert out["j2"].state is JobState.FINISHED


def test_admission_control_rejects_overflow_submissions_whole():
    tb = roce_lan()
    server, client = wire(tb)
    out = {}

    def driver(env):
        broker = yield client.open_broker(
            doors=1,
            tenants={"t": TenantPolicy(max_queued=2)},
        )
        files = [TransferSpec(f"/data/f{i}", MiB) for i in range(3)]
        rejected = broker.submit("t", files)
        # Rejection is immediate and whole: the event is already up.
        assert rejected.done.triggered
        out["rejected"] = rejected
        accepted = broker.submit("t", files[:2])
        yield accepted.done
        out.update(broker=broker, accepted=accepted)

    tb.engine.process(driver(tb.engine))
    tb.engine.run()
    rejected, accepted = out["rejected"], out["accepted"]
    assert rejected.state is JobState.CANCELED
    assert all(t.state is FileState.CANCELED for t in rejected.files)
    assert all("queue full" in t.error for t in rejected.files)
    assert accepted.state is JobState.FINISHED
    assert out["broker"]._m_jobs_rejected.count == 1


def test_sessions_reuse_negotiation_on_a_door():
    """After a door's first file, later files skip the link-level
    negotiation: no extra QPs, and the link is flagged negotiated."""
    tb = roce_lan()
    server, client = wire(tb)
    out = {}

    def driver(env):
        broker = yield client.open_broker(doors=1)
        qps_after_open = len(tb.src_dev.qps)
        job = broker.submit(
            "t", [TransferSpec(f"/data/f{i}", MiB) for i in range(6)]
        )
        yield job.done
        out["job"] = job
        out["same_qps"] = len(tb.src_dev.qps) == qps_after_open
        out["negotiated"] = next(iter(broker.doors.values())).link._negotiated

    tb.engine.process(driver(tb.engine))
    tb.engine.run()
    assert out["job"].state is JobState.FINISHED
    assert out["same_qps"]  # six files, one connection set
    assert out["negotiated"]


def test_broker_and_policy_validation():
    with pytest.raises(ValueError):
        TenantPolicy(weight=0)
    with pytest.raises(ValueError):
        TenantPolicy(max_inflight=0)
    with pytest.raises(ValueError):
        BrokerConfig(max_active=0)
    with pytest.raises(ValueError):
        BrokerConfig(max_attempts=0)
    with pytest.raises(ValueError):
        TransferSpec("", MiB)
    with pytest.raises(ValueError):
        TransferSpec("/data/a", 0)
