"""Scheduler over the shared per-host channel pool (``use_srq``).

The broker-facing half of connection scaling: every door to one
(host, port) shares a single host pool, the door session caps derive
from the pool's real lease capacity, admission never oversubscribes the
shared leases, and teardown paths — including deadline cancellation —
return every lease (audited by ``quiescence_leaks``).
"""

from repro.sched import quiescence_leaks, run_sched, synthetic_spec


def srq_spec(**over):
    kwargs = dict(seed=0, total_files=40, doors=2, max_active=16,
                  files_per_job=10)
    kwargs.update(over)
    spec = synthetic_spec(**kwargs)
    spec["use_srq"] = True
    return spec


def test_doors_share_one_pool_and_derive_caps():
    result = run_sched(srq_spec(), audit=True)
    assert result.all_finished
    assert result.audit_ok, result.audit_problems[:3]
    assert not result.leaks, result.leaks[:3]
    doors = list(result.broker.doors.values())
    pools = {id(d.link._host_pool) for d in doors}
    assert len(pools) == 1, "same (host, port) must share one pool"
    hp = doors[0].link._host_pool
    # The cap is the pool's real capacity, not the spec's constant (4).
    assert all(d.max_sessions == hp.sessions.capacity for d in doors)
    assert hp.sessions.balanced


def test_admission_never_oversubscribes_the_shared_pool():
    """With the broker's worker pool far larger than the lease capacity,
    dispatch must park the excess instead of tripping the synchronous
    lease-capacity error (the per-door caps alone cannot see each
    other's in-flight dispatches on the shared pool)."""
    spec = srq_spec(total_files=120, max_active=64)
    result = run_sched(spec)
    assert result.all_finished
    assert not result.leaks, result.leaks[:3]
    hp = next(iter(result.broker.doors.values())).link._host_pool
    assert result.broker.peak_active <= hp.sessions.capacity
    rejected = sum(
        row["value"] for row in result.testbed.engine.metrics.snapshot()
        if row["metric"] == "qp_pool.lease_rejected"
    )
    assert rejected == 0, "admission let a dispatch hit a full pool"


def test_deadline_cancel_returns_leases():
    """Deadline cancellation aborts ACTIVE sessions mid-flight; the
    abort path must return their channel leases like completion does
    (the quiescence audit now covers pool lease balance)."""
    spec = srq_spec(total_files=60, files_per_job=30)
    for job in spec["jobs"]:
        job["deadline"] = 0.5  # enough to go ACTIVE, not enough to finish
    result = run_sched(spec)
    canceled = sum(
        1 for job in result.broker.jobs for task in job.files
        if task.state.value == "CANCELED"
    )
    assert canceled > 0, "deadline never fired — test is vacuous"
    assert not result.leaks, result.leaks[:3]
    hp = next(iter(result.broker.doors.values())).link._host_pool
    assert hp.sessions.balanced, f"leaked {hp.sessions.leased} leases"


def test_quiescence_audit_flags_unreturned_lease():
    result = run_sched(srq_spec())
    assert not result.leaks
    hp = next(iter(result.broker.doors.values())).link._host_pool
    hp.sessions.lease(("stuck", 1))
    leaks = quiescence_leaks(result)
    assert any("lease" in leak for leak in leaks), leaks
    hp.sessions.release(("stuck", 1))
    assert not quiescence_leaks(result)
