"""Crash-restart recovery: nothing lost, nothing transferred twice.

The chaos contract for the durable broker: a ``broker_crashes`` fault
kills the incarnation mid-flight (links crash, volatile state is gone),
the supervisor restarts it from the journal, and the recovered run must
end byte-identical to one that never crashed — FINISHED files are never
re-transferred, queued files continue, and files ACTIVE at crash time
re-attach via SESSION_RESUME so only the missing suffix moves.
"""

import pytest

from repro.sched import run_sched, stable_report_lines, synthetic_spec

MiB = 1 << 20

#: The 24-file quick mix's flight window (attempts ~0.74s..~1.3s sim
#: time): every point below lands while transfers are genuinely active.
CRASH_POINTS = (0.9, 1.0, 1.1)


def _quick_spec(seed, crash_at=None):
    spec = synthetic_spec(seed=seed, total_files=24, doors=2)
    if crash_at is not None:
        spec["faults"] = {"broker_crashes": [crash_at]}
    return spec


def _counter(result, name):
    metric = result.testbed.engine.metrics.get(name)
    return metric.total if metric is not None else 0.0


def test_mid_flight_crash_recovers_with_nothing_lost():
    base = run_sched(_quick_spec(0), audit=True)
    crashed = run_sched(_quick_spec(0, crash_at=1.0), audit=True)

    assert crashed.recoveries == 1
    assert crashed.all_finished
    # The delivery audit is the hard guarantee: byte-exact sink content,
    # no missing blocks, duplicated blocks only across a session resume.
    assert crashed.audit_ok, crashed.audit_problems
    # The crash landed mid-flight: interrupted sessions re-attached via
    # SESSION_RESUME instead of starting over.
    assert _counter(crashed, "sched.recovery.resumed") > 0
    assert _counter(crashed, "sched.recovery.resume_failed") == 0
    assert _counter(crashed, "sched.recovery.jobs_replayed") == len(base.jobs)
    # Outcome determinism: the recovered run's stable report is byte
    # identical to the run that never crashed.
    assert stable_report_lines(crashed.jobs) == stable_report_lines(base.jobs)


@pytest.mark.parametrize("seed", [0, 1])
@pytest.mark.parametrize("crash_at", CRASH_POINTS)
def test_crash_point_and_seed_sweep_is_outcome_deterministic(seed, crash_at):
    """K distinct crash points x 2 seeds: every recovered run converges
    to the uncrashed run's outcomes, and the audit stays clean."""
    base = run_sched(_quick_spec(seed), audit=True)
    crashed = run_sched(_quick_spec(seed, crash_at=crash_at), audit=True)
    assert crashed.recoveries == 1
    assert crashed.all_finished
    assert crashed.audit_ok, crashed.audit_problems
    assert stable_report_lines(crashed.jobs) == stable_report_lines(base.jobs)


def _big_file_spec(crash_at=None):
    """Two 1 GiB files: long enough data phases that a crash lands in
    the middle of a file, leaving a real suffix to resume."""
    spec = {
        "testbed": "ani-wan", "seed": 0, "max_active": 2,
        "doors": 2, "door_sessions": 2,
        "tenants": {"g": {"weight": 1.0, "max_inflight": 2,
                          "max_queued": 10 ** 9}},
        "jobs": [{"tenant": "g", "priority": 0, "submit_at": 0.0,
                  "files": [{"path": f"/data/big/f{i}", "size": 1024 * MiB,
                             "sources": ["door-0", "door-1"]}
                            for i in range(2)]}],
    }
    if crash_at is not None:
        spec["faults"] = {"broker_crashes": [crash_at]}
    return spec


def test_resume_moves_only_the_missing_suffix():
    """A crash in the middle of a 1 GiB data phase: the resumed session
    re-attaches at the sink's restart marker, so blocks delivered before
    the crash are never sent again (zero duplicate-delivered bytes)."""
    result = run_sched(_big_file_spec(crash_at=2.0), audit=True)
    assert result.recoveries == 1
    assert result.all_finished
    assert result.audit_ok, result.audit_problems
    assert result.overlap_bytes == 0

    nblocks = 1024 * MiB // result.block_size
    resumed = [t for j in result.jobs for t in j.files if t.resumed_from]
    assert resumed, "no session re-attached via SESSION_RESUME"
    for task in resumed:
        assert 0 < task.resumed_from < nblocks
    assert result.recovered_suffix_bytes > 0
    # Suffix-only: the recovered bytes are strictly less than the files.
    assert result.recovered_suffix_bytes < sum(t.size for t in resumed)

    base = run_sched(_big_file_spec(), audit=True)
    assert stable_report_lines(result.jobs) == stable_report_lines(base.jobs)


def test_submissions_during_the_outage_queue_for_the_next_incarnation():
    """The supervisor buffers submissions that arrive while the broker
    is down and replays them, in order, on the recovered incarnation."""
    # Door opening on the WAN finishes at ~0.735s; a crash at 0.7 with
    # the default 0.5s restart delay makes the t=0 submissions land in
    # the outage window.
    crashed = run_sched(_quick_spec(0, crash_at=0.7), audit=True)
    assert crashed.recoveries == 1
    assert crashed.all_finished
    assert crashed.audit_ok, crashed.audit_problems
    submits = [r for r in crashed.journal.records if r["kind"] == "submit"]
    assert submits and all(r["t"] >= 1.2 for r in submits)

    base = run_sched(_quick_spec(0), audit=True)
    assert stable_report_lines(crashed.jobs) == stable_report_lines(base.jobs)


def test_drain_checkpoint_then_standalone_recover(tmp_path):
    """``drain()`` stops admissions, finishes in-flight work, writes a
    clean checkpoint; a later ``run_sched(recover=...)`` continues the
    leftover files from the journal file alone (no spec, no re-transfer
    of FINISHED files)."""
    path = str(tmp_path / "drain.journal")
    spec = _quick_spec(0)
    spec["drain_at"] = 0.9  # after the first dispatch wave, before it lands
    first = run_sched(spec, journal_path=path)
    assert first.drained
    assert not first.all_finished  # queued files were left for later
    checkpoints = [r for r in first.journal.records
                   if r["kind"] == "checkpoint"]
    assert len(checkpoints) == 1 and checkpoints[0]["clean"]
    finished_before = {
        (j.job_id, t.index)
        for j in first.jobs for t in j.files if t.state.value == "FINISHED"
    }
    assert finished_before  # in-flight work finished before the checkpoint

    second = run_sched(recover=path)
    assert second.all_finished
    assert second.broker.recovered
    # FINISHED files came back by replay — never re-transferred: every
    # post-recovery attempt is for a file the drain left unfinished.
    boundary = next(i for i, r in enumerate(second.journal.records)
                    if r["kind"] == "recover")
    late_attempts = [r for r in second.journal.records[boundary:]
                     if r["kind"] == "attempt"]
    assert late_attempts
    assert all((r["job_id"], r["index"]) not in finished_before
               for r in late_attempts)
