"""Testbed encodings (Table I) and the analysis helpers."""

import pytest

from repro.analysis import BandwidthMeter, Series, Table, summarize_latencies
from repro.tcp import TcpMode
from repro.testbeds import TESTBEDS, ani_wan, infiniband_lan, roce_lan
from repro.verbs import RdmaArch


# -- Table I encodings ------------------------------------------------------------
def test_roce_lan_matches_table1():
    tb = roce_lan()
    assert tb.arch is RdmaArch.ROCE
    assert tb.nic_gbps == 40.0
    assert tb.src.spec.cores == 12
    assert tb.src.spec.mem_bytes == 24 << 30
    assert tb.rtt == pytest.approx(0.025e-3)
    assert tb.mtu == 9000
    assert tb.tcp_cc == "bic"
    assert tb.tcp_mode is TcpMode.PIPE
    assert tb.bare_metal_gbps == 40.0


def test_infiniband_lan_matches_table1():
    tb = infiniband_lan()
    assert tb.arch is RdmaArch.INFINIBAND
    assert tb.src.spec.cores == 8
    assert tb.src.spec.mem_bytes == 48 << 30
    assert tb.rtt == pytest.approx(0.013e-3)
    assert tb.mtu == 65520
    assert tb.tcp_cc == "cubic"
    # PCIe 2.0 x8 is the bare-metal ceiling, not the 40G link.
    assert tb.bare_metal_gbps == pytest.approx(25.6)


def test_ani_wan_matches_table1():
    tb = ani_wan()
    assert tb.nic_gbps == 10.0
    assert tb.rtt == pytest.approx(49e-3)
    assert tb.src.spec.cores == 16  # ANL Opteron
    assert tb.dst.spec.cores == 8  # NERSC Xeon
    assert tb.src.spec.mem_bytes == 64 << 30
    assert tb.dst.spec.mem_bytes == 24 << 30
    assert tb.tcp_mode is TcpMode.FLUID
    assert tb.duplex.rtt == pytest.approx(49e-3, rel=1e-3)


def test_iwarp_lan_extension_testbed():
    from repro.testbeds import iwarp_lan

    tb = iwarp_lan()
    assert tb.arch is RdmaArch.IWARP
    assert tb.nic_gbps == 10.0
    assert tb.tcp_mode is TcpMode.PIPE
    # iWARP has the heaviest verbs software path of the three.
    from repro.verbs import ArchProfile

    iw = ArchProfile.for_arch(RdmaArch.IWARP)
    ib = ArchProfile.for_arch(RdmaArch.INFINIBAND)
    ro = ArchProfile.for_arch(RdmaArch.ROCE)
    assert iw.post_send_seconds > ro.post_send_seconds > ib.post_send_seconds


def test_wan_bdp():
    tb = ani_wan()
    assert tb.bdp_bytes == pytest.approx(10e9 / 8 * 49e-3)


def test_testbed_registry():
    assert set(TESTBEDS) == {"roce-lan", "infiniband-lan", "ani-wan", "iwarp-lan"}
    for factory in TESTBEDS.values():
        tb = factory()
        assert tb.engine.now == 0.0


def test_bottleneck_created_once():
    tb = ani_wan()
    assert tb.tcp_bottleneck() is tb.tcp_bottleneck()


def test_lan_tcp_connection_is_pipe():
    tb = roce_lan()
    conn = tb.tcp_connection()
    assert conn.mode is TcpMode.PIPE
    assert conn.cc.name == "bic"


def test_wan_tcp_connection_bdp_buffers():
    tb = ani_wan()
    conn = tb.tcp_connection()
    assert conn.mode is TcpMode.FLUID
    assert conn._sndbuf.capacity == pytest.approx(tb.bdp_bytes)


# -- analysis ---------------------------------------------------------------------
def test_bandwidth_meter(engine):
    meter = BandwidthMeter(engine, "m")

    def proc(env):
        for _ in range(10):
            yield env.timeout(0.1)
            meter.record(125_000_000 * 0.1)

    engine.process(proc(engine))
    engine.run()
    assert meter.gbps() == pytest.approx(1.0, rel=1e-6)
    assert meter.total_bytes == pytest.approx(125_000_000)


def test_latency_summary():
    stats = summarize_latencies([1e-6, 2e-6, 3e-6, 100e-6])
    assert stats["p50"] <= stats["p90"] <= stats["p99"] <= stats["max"]
    assert stats["max"] == pytest.approx(100.0)
    empty = summarize_latencies([])
    assert empty["mean"] != empty["mean"]  # NaN


def test_table_renders():
    t = Table("demo", ["a", "b"])
    t.add_row(1, "x")
    text = t.render()
    assert "demo" in text and "a" in text and "x" in text
    with pytest.raises(ValueError):
        t.add_row(1)


def test_series():
    s = Series("rftp", x_name="block", y_name="gbps")
    s.add(128, 39.9, cpu=80.0)
    s.add(256, 39.95)
    assert s.xs() == [128, 256]
    assert s.y_at(128) == pytest.approx(39.9)
    assert s.y_at(999) is None
    assert "rftp" in s.render()


def test_formatters_render_nan_and_none_as_dash():
    import math

    from repro.analysis.report import format_gbps, format_pct

    # GridFTP latency summaries are NaN (no per-block samples); cells
    # must render as an em-dash, never "nan" or a ValueError.
    assert format_gbps(float("nan")).strip() == "—"
    assert format_pct(float("nan")).strip() == "—"
    assert format_gbps(None).strip() == "—"
    assert format_pct(None).strip() == "—"
    assert len(format_gbps(math.nan)) == len(format_gbps(1.0)) == 7
    assert format_gbps(12.345) == "  12.35"
    assert format_pct(42.0) == "  42.0%"
