"""Edge cases across subsystems that the main suites don't reach."""

import pytest

from repro.apps.io import CollectingSink, PatternSource
from repro.core import ProtocolConfig, RdmaMiddleware
from repro.core.channels import DataChannels
from repro.testbeds import ani_wan, roce_lan
from repro.verbs import VerbsError
from tests.conftest import make_fabric


def test_data_channels_require_qps():
    with pytest.raises(ValueError):
        DataChannels([])


def test_data_channels_pick_least_loaded():
    f = make_fabric()
    qa1, _ = f.qp_pair()
    qa2, _ = f.qp_pair()
    channels = DataChannels([qa1, qa2])
    # Simulate load imbalance.
    qa1._outstanding_sends = 5
    qa2._outstanding_sends = 1
    assert channels._pick() is qa2
    qa2._outstanding_sends = 9
    assert channels._pick() is qa1
    qa1._outstanding_sends = 0
    qa2._outstanding_sends = 0


def test_server_rejects_unknown_endpoint_kind():
    tb = roce_lan()
    cfg = ProtocolConfig()
    server = RdmaMiddleware(tb.dst, tb.dst_dev, tb.cm, cfg)
    server.serve(4000, CollectingSink(tb.dst))
    qp = tb.src_dev.create_qp(
        tb.src_dev.alloc_pd(), tb.src_dev.create_cq(), tb.src_dev.create_cq()
    )
    connect = tb.cm.connect(qp, tb.dst_dev, 4000, ("mystery",))
    caught = []

    def watcher(env):
        try:
            yield connect
        except VerbsError as exc:
            caught.append(str(exc))

    tb.engine.process(watcher(tb.engine))
    tb.engine.run()
    assert caught and "unknown endpoint kind" in caught[0]


def test_transfer_rejects_nonpositive_bytes():
    tb = roce_lan()
    cfg = ProtocolConfig()
    server = RdmaMiddleware(tb.dst, tb.dst_dev, tb.cm, cfg)
    server.serve(4000, CollectingSink(tb.dst))
    client = RdmaMiddleware(tb.src, tb.src_dev, tb.cm, cfg)

    def driver(env):
        link = yield client.open_link(tb.dst_dev, 4000)
        with pytest.raises(ValueError):
            link.transfer(PatternSource(tb.src), 0, session_id=1)
        return True

    p = tb.engine.process(driver(tb.engine))
    tb.engine.run()
    assert p.ok and p.value


def test_block_latencies_recorded():
    tb = ani_wan()
    cfg = ProtocolConfig(
        block_size=4 << 20, num_channels=2, source_blocks=48, sink_blocks=48
    )
    server = RdmaMiddleware(tb.dst, tb.dst_dev, tb.cm, cfg)
    server.serve(4000, CollectingSink(tb.dst))
    client = RdmaMiddleware(tb.src, tb.src_dev, tb.cm, cfg)
    captured = {}

    def driver(env):
        link = yield client.open_link(tb.dst_dev, 4000, cfg)
        job = yield link.transfer(PatternSource(tb.src), 512 << 20, session_id=31)
        captured["job"] = job

    tb.engine.process(driver(tb.engine))
    tb.engine.run()
    job = captured["job"]
    assert len(job.block_latencies) == job.total_blocks
    # Every WRITE completion waits at least the RC ACK round trip.
    assert min(job.block_latencies) >= tb.rtt
    assert not job._post_times  # fully drained


def test_one_block_dataset():
    tb = roce_lan()
    cfg = ProtocolConfig(
        block_size=1 << 20, num_channels=1, source_blocks=2, sink_blocks=2
    )
    server = RdmaMiddleware(tb.dst, tb.dst_dev, tb.cm, cfg)
    sink = CollectingSink(tb.dst)
    server.serve(4000, sink)
    client = RdmaMiddleware(tb.src, tb.src_dev, tb.cm, cfg)
    done = client.transfer(tb.dst_dev, 4000, PatternSource(tb.src), 777)
    tb.engine.run()
    assert done.ok
    assert done.value.blocks == 1
    assert sink.deliveries[0][0].length == 777


def test_tiny_pool_still_completes():
    """A two-block pool serialises hard but must never deadlock."""
    tb = roce_lan()
    cfg = ProtocolConfig(
        block_size=1 << 20,
        num_channels=2,
        source_blocks=2,
        sink_blocks=2,
        initial_credits=1,
    )
    server = RdmaMiddleware(tb.dst, tb.dst_dev, tb.cm, cfg)
    sink = CollectingSink(tb.dst)
    server.serve(4000, sink)
    client = RdmaMiddleware(tb.src, tb.src_dev, tb.cm, cfg)
    done = client.transfer(tb.dst_dev, 4000, PatternSource(tb.src), 32 << 20)
    tb.engine.run()
    assert done.ok
    assert sink.bytes_written == 32 << 20


def test_engine_isolated_between_testbeds():
    """Each testbed owns its engine; time does not leak across."""
    tb1 = roce_lan()
    tb2 = roce_lan()
    assert tb1.engine is not tb2.engine

    def tick(env):
        yield env.timeout(5.0)

    tb1.engine.process(tick(tb1.engine))
    tb1.engine.run()
    assert tb1.engine.now == 5.0
    assert tb2.engine.now == 0.0
