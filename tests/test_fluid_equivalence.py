"""Fluid fast-forward must be invisible in results — only in event counts.

Every application workload is run twice, on a testbed built with
``use_fluid=True`` (the default) and ``use_fluid=False``, and the
simulated outcomes — goodput and final clock — must agree **exactly**
(float equality, not approx): the fluid paths are constructed to
evaluate the same float expressions the discrete event chains would.
The payoff shows up as a strictly lower event count.
"""

from __future__ import annotations

import pytest

from repro.testbeds import TESTBEDS

MiB = 1024 * 1024


def _rftp(testbed_name, fluid):
    from repro.apps.rftp import run_rftp

    tb = TESTBEDS[testbed_name](use_fluid=fluid)
    result = run_rftp(tb, total_bytes=16 * MiB)
    return result.gbps, tb.engine.now, tb.engine.events_processed


def _gridftp(testbed_name, fluid):
    from repro.apps.gridftp import run_gridftp

    tb = TESTBEDS[testbed_name](use_fluid=fluid)
    result = run_gridftp(tb, total_bytes=16 * MiB, streams=4)
    return result.gbps, tb.engine.now, tb.engine.events_processed


def _fio(testbed_name, fluid):
    from repro.apps.fio import FioJob, run_fio

    tb = TESTBEDS[testbed_name](use_fluid=fluid)
    job = FioJob(semantics="write", block_size=128 * 1024, iodepth=16,
                 total_blocks=200)
    result = run_fio(tb, job)
    return result.gbps, tb.engine.now, tb.engine.events_processed


@pytest.mark.parametrize(
    "runner,testbed",
    [
        (_rftp, "roce-lan"),
        (_rftp, "ani-wan"),
        (_gridftp, "ani-wan"),
        (_fio, "roce-lan"),
    ],
    ids=["rftp-roce", "rftp-wan", "gridftp-wan", "fio-roce"],
)
def test_fluid_matches_discrete_exactly(runner, testbed):
    gbps_f, now_f, events_f = runner(testbed, True)
    gbps_d, now_d, events_d = runner(testbed, False)
    assert gbps_f == gbps_d
    assert now_f == now_d
    assert events_f < events_d


def test_burst_workload_event_ratio_exceeds_three():
    """The acceptance floor: ≥3× fewer kernel events on the steady-state
    WAN bulk pipeline (the ``sim_fluid`` bench workload)."""
    from repro.obs.bench import _run_fluid_pipeline

    discrete = _run_fluid_pipeline(False, flows=4, blocks=24,
                                   unit=1 << 16, packets=16)
    fluid = _run_fluid_pipeline(True, flows=4, blocks=24,
                                unit=1 << 16, packets=16)
    assert fluid["sim_time"] == discrete["sim_time"]
    assert discrete["events"] >= 3 * fluid["events"]


def test_fault_armed_links_auto_pin_to_discrete():
    """Arming flaps or spikes must flip every path link to discrete mode
    (fluid flap handling is optimistic for in-flight reservations), and
    the chaos run must still end clean and byte-exact."""
    from repro.faults.chaos import run_chaos
    from repro.faults.plan import FaultPlan

    tb = TESTBEDS["ani-wan"]()
    plan = FaultPlan(seed=3, latency_spike_rate=0.05,
                     link_flaps=((0.2, 0.05),))
    result = run_chaos(tb, total_bytes=8 * MiB, plan=plan)
    links = list(tb.duplex.forward.links) + list(tb.duplex.backward.links)
    assert all(link.use_fluid is False for link in links)
    assert result.completed and result.clean and result.byte_exact
    assert result.flaps_fired == 1


def test_clean_chaos_leaves_links_fluid():
    """A plan with no link-level faults must not pin anything."""
    from repro.faults.chaos import run_chaos
    from repro.faults.plan import FaultPlan

    tb = TESTBEDS["ani-wan"]()
    plan = FaultPlan(seed=5, write_fault_rate=0.02)
    result = run_chaos(tb, total_bytes=8 * MiB, plan=plan)
    links = list(tb.duplex.forward.links) + list(tb.duplex.backward.links)
    assert all(link.use_fluid is None for link in links)
    assert result.completed and result.clean


def test_chaos_with_link_faults_matches_discrete_engine():
    """With armed links pinned, a fluid-engine chaos run must land on the
    same clock as a fully discrete one."""
    from repro.faults.chaos import run_chaos
    from repro.faults.plan import FaultPlan

    outcomes = {}
    for fluid in (True, False):
        tb = TESTBEDS["ani-wan"](use_fluid=fluid)
        plan = FaultPlan(seed=3, latency_spike_rate=0.05,
                         link_flaps=((0.2, 0.05),))
        result = run_chaos(tb, total_bytes=8 * MiB, plan=plan)
        assert result.completed and result.clean
        outcomes[fluid] = (result.sim_time, result.latency_spikes,
                          result.flaps_fired)
    assert outcomes[True] == outcomes[False]
