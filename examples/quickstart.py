#!/usr/bin/env python3
"""Quickstart: one RFTP transfer over the 40 Gbps RoCE LAN testbed.

Builds the paper's Stony Brook back-to-back testbed, starts an RFTP
server on the sink host, pushes 1 GB of memory-to-memory data through
the RDMA middleware, and prints bandwidth, CPU, and protocol statistics.

Run:
    python examples/quickstart.py
"""

from repro.apps.rftp import run_rftp
from repro.core import ProtocolConfig
from repro.testbeds import roce_lan


def main() -> None:
    testbed = roce_lan()
    config = ProtocolConfig(
        block_size=4 << 20,  # 4 MiB payload blocks
        num_channels=4,  # parallel data-channel queue pairs
        source_blocks=32,  # registered blocks in flight at the source
        sink_blocks=32,  # credits the sink can hand out
    )

    result = run_rftp(testbed, total_bytes=1 << 30, config=config)

    outcome = result.outcome
    print(f"testbed        : {testbed.name} ({testbed.nic_gbps:g} Gbps link)")
    print(f"transferred    : {outcome.bytes / 2**30:.1f} GiB in {result.elapsed:.3f} s")
    print(f"goodput        : {result.gbps:.2f} Gbps "
          f"({100 * result.gbps / testbed.bare_metal_gbps:.0f}% of bare metal)")
    print(f"client CPU     : {result.client_cpu_pct:.0f}% of one core")
    print(f"server CPU     : {result.server_cpu_pct:.0f}% of one core "
          "(one-sided RDMA WRITE: the sink never touches the data path)")
    print(f"blocks         : {outcome.blocks} x {config.block_size >> 20} MiB")
    print(f"control msgs   : {outcome.ctrl_sent} sent / {outcome.ctrl_received} received")
    print(f"credit requests: {outcome.mr_requests} (proactive feedback keeps this low)")
    print(f"RNR NAKs       : {outcome.rnr_naks} (flow control must keep this at zero)")

    assert result.gbps > 0.9 * testbed.bare_metal_gbps
    assert outcome.rnr_naks == 0


if __name__ == "__main__":
    main()
