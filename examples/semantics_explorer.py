#!/usr/bin/env python3
"""Explore raw RDMA semantics with the fio-style engine (§III-B).

Sweeps block size and I/O depth for RDMA WRITE / READ / SEND-RECV on
any of the three testbeds and prints the bandwidth/CPU/latency grid the
paper uses to justify its hybrid WRITE+SEND design.

Run:
    python examples/semantics_explorer.py                 # RoCE LAN
    python examples/semantics_explorer.py infiniband-lan
    python examples/semantics_explorer.py ani-wan         # watch READ die
"""

import sys

from repro.apps.fio import FioJob, run_fio
from repro.testbeds import TESTBEDS

BLOCK_SIZES = (16 << 10, 128 << 10, 1 << 20)
IODEPTHS = (1, 16)
SEMANTICS = ("write", "read", "send")


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "roce-lan"
    if name not in TESTBEDS:
        raise SystemExit(f"unknown testbed {name!r}; pick from {sorted(TESTBEDS)}")

    print(f"testbed: {name}")
    print(f"{'depth':>5} {'semantics':>9} {'block':>7} {'Gbps':>7} "
          f"{'src CPU%':>8} {'dst CPU%':>8} {'lat us':>9}")
    for iodepth in IODEPTHS:
        for semantics in SEMANTICS:
            for block_size in BLOCK_SIZES:
                tb = TESTBEDS[name]()
                blocks = max(iodepth * 8, min(1500, (96 << 20) // block_size))
                r = run_fio(
                    tb,
                    FioJob(
                        semantics=semantics,
                        block_size=block_size,
                        iodepth=iodepth,
                        total_blocks=blocks,
                    ),
                )
                print(
                    f"{iodepth:>5} {semantics:>9} {block_size >> 10:>6}K "
                    f"{r.gbps:7.2f} {r.src_cpu_pct:8.1f} {r.dst_cpu_pct:8.1f} "
                    f"{r.lat_mean_us:9.1f}"
                )

    print(
        "\nReadings: depth 1 leaves the pipe idle; WRITE/SEND saturate from"
        " ~16K blocks at depth 16 while READ trails (responder read engine);"
        " SEND burns CPU at BOTH ends; on the WAN, READ collapses to"
        " ORD*block/RTT — the findings behind the paper's hybrid design."
    )


if __name__ == "__main__":
    main()
