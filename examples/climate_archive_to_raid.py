#!/usr/bin/env python3
"""Archiving a climate-model output stream to a remote RAID array.

The paper's memory-to-disk scenario (Figure 11): a site receives a
10 Gbps WAN stream and must land it on spinning storage without the
file system becoming the bottleneck.  RFTP's answer is direct I/O —
this example contrasts it with POSIX buffered writes and shows the
disk staying out of the critical path.

Run:
    python examples/climate_archive_to_raid.py
"""

from repro.apps.io import DiskSink, NullSink
from repro.apps.rftp import run_rftp
from repro.core import ProtocolConfig
from repro.testbeds import ani_wan

DATASET = 4 << 30  # one model-month of output


def config() -> ProtocolConfig:
    return ProtocolConfig(
        block_size=4 << 20,
        num_channels=4,
        source_blocks=48,
        sink_blocks=48,
        writer_threads=4,  # overlap the RAID lanes
    )


def main() -> None:
    runs = []

    tb = ani_wan()
    mem = run_rftp(tb, DATASET, config(), sink=NullSink(tb.dst))
    runs.append(("memory-to-memory (/dev/null)", mem))

    tb = ani_wan()
    direct = run_rftp(tb, DATASET, config(), sink=DiskSink(tb.dst, direct=True))
    runs.append(("memory-to-disk, direct I/O (RFTP's mode)", direct))

    tb = ani_wan()
    posix = run_rftp(tb, DATASET, config(), sink=DiskSink(tb.dst, direct=False))
    runs.append(("memory-to-disk, POSIX buffered", posix))

    width = max(len(label) for label, _ in runs)
    print(f"{'configuration':<{width}}  {'Gbps':>6}  {'server CPU%':>11}")
    for label, r in runs:
        print(f"{label:<{width}}  {r.gbps:6.2f}  {r.server_cpu_pct:11.0f}")

    print(
        "\nWith direct I/O the RAID absorbs the full WAN stream at the same"
        f" bandwidth as /dev/null ({direct.gbps:.2f} vs {mem.gbps:.2f} Gbps)"
        " — the page-cache copy that POSIX writes burn on the writer"
        " threads is the cost RFTP avoids."
    )


if __name__ == "__main__":
    main()
