#!/usr/bin/env python3
"""Watching the protocol work: trace the credit slow-start on the WAN.

Attaches the structured tracer to the ANI WAN testbed, runs a short RFTP
transfer, and prints (a) the first control messages on the wire — the
three-phase negotiation of §IV-C — and (b) the credit ledger's balance
over the first round trips, showing the exponential grant ramp that
fills the 61 MB bandwidth-delay product without a single request RTT.

Run:
    python examples/protocol_trace.py
"""

from repro.apps.io import CollectingSink, PatternSource
from repro.core import ProtocolConfig, RdmaMiddleware
from repro.sim.trace import Tracer
from repro.testbeds import ani_wan


def main() -> None:
    tb = ani_wan()
    tb.engine.tracer = Tracer(categories={"ctrl", "credits"})
    config = ProtocolConfig(
        block_size=4 << 20,
        num_channels=4,
        source_blocks=48,
        sink_blocks=48,
        initial_credits=2,
        credit_grant_ratio=2,
    )

    server = RdmaMiddleware(tb.dst, tb.dst_dev, tb.cm, config)
    server.serve(2811, CollectingSink(tb.dst))
    client = RdmaMiddleware(tb.src, tb.src_dev, tb.cm, config)

    links = {}

    def driver(env):
        link = yield client.open_link(tb.dst_dev, 2811, config)
        links["link"] = link
        outcome = yield client.transfer(
            tb.dst_dev, 2811, PatternSource(tb.src), 2 << 30, link=link
        )
        links["outcome"] = outcome

    tb.engine.process(driver(tb.engine))
    tb.engine.run()

    tracer = tb.engine.tracer
    print("--- first 12 control messages (3-phase protocol, §IV-C) ---")
    for i, rec in enumerate(tracer.query(category="ctrl")):
        if i >= 12:
            break
        print(f"  t={rec.time * 1e3:8.3f} ms  {rec.fields['type']}")

    print("\n--- credit ramp (cumulative grants vs round trips) ---")
    history = links["link"].ledger.history
    t0 = history[0][0]
    for rtts in (1, 2, 3, 4, 5, 6, 8):
        cutoff = t0 + rtts * tb.rtt
        totals = [total for ts, total in history if ts <= cutoff]
        total = totals[-1] if totals else 0
        bar = "#" * total
        print(f"  {rtts:>2} RTT: {total:>3} credits  {bar}")

    outcome = links["outcome"]
    print(f"\ntransfer: {outcome.gbps:.2f} Gbps, "
          f"{outcome.mr_requests} explicit credit requests, "
          f"peak balance {outcome.peak_credits}")


if __name__ == "__main__":
    main()
