#!/usr/bin/env python3
"""Inter-data-center bulk replication over the ANI WAN (the paper's
motivating workload: moving DOE science data between ANL and NERSC,
2000 miles / 49 ms apart, over 10 Gbps RoCE).

Compares the paper's RFTP against the GridFTP baseline with 1 and 8
streams — the Figure 10 experiment — and shows *why* RFTP wins: the
proactive credit ramp fills the 61 MB bandwidth-delay product without
ever paying a request round trip.

Run:
    python examples/wan_bulk_transfer.py
"""

from repro.apps.gridftp import run_gridftp
from repro.apps.rftp import run_rftp
from repro.core import ProtocolConfig
from repro.testbeds import ani_wan

DATASET = 8 << 30  # 8 GiB of simulated experiment output


def main() -> None:
    tb = ani_wan()
    print(f"path: {tb.src.name} -> {tb.dst.name}, {tb.nic_gbps:g} Gbps, "
          f"RTT {tb.rtt * 1e3:.0f} ms, BDP {tb.bdp_bytes / 2**20:.1f} MiB")
    print(f"dataset: {DATASET / 2**30:.0f} GiB memory-to-memory\n")

    rows = []
    for streams in (1, 8):
        g = run_gridftp(ani_wan(), DATASET, streams=streams, block_size=4 << 20)
        rows.append((f"GridFTP ({streams} stream{'s' if streams > 1 else ''})",
                     g.gbps, g.client_cpu_pct, f"{g.losses} TCP losses"))

    config = ProtocolConfig(
        block_size=4 << 20,
        num_channels=4,
        # Credits take two one-way trips to recycle (data out, BLOCK_DONE
        # + grant back), so the pool covers ~2 BDP of flight.
        source_blocks=48,
        sink_blocks=48,
    )
    r = run_rftp(ani_wan(), DATASET, config)
    rows.append(("RFTP (RDMA WRITE)", r.gbps, r.client_cpu_pct,
                 f"peak credits {r.outcome.peak_credits}, "
                 f"{r.outcome.mr_requests} credit requests"))

    width = max(len(label) for label, *_ in rows)
    print(f"{'tool':<{width}}  {'Gbps':>6}  {'CPU%':>6}  notes")
    for label, gbps, cpu, notes in rows:
        print(f"{label:<{width}}  {gbps:6.2f}  {cpu:6.0f}  {notes}")

    rftp_gbps = rows[-1][1]
    print(f"\nRFTP reaches {100 * rftp_gbps / tb.nic_gbps:.0f}% of the 10G circuit;"
          " GridFTP pays for every congestion event with a multi-second"
          " cubic recovery.")


if __name__ == "__main__":
    main()
