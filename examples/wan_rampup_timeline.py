#!/usr/bin/env python3
"""Ramp-up timelines: how fast each protocol fills the 10G WAN pipe.

Samples instantaneous goodput in half-second windows for RFTP and for
single-stream GridFTP on the ANI testbed and prints text sparklines.
RFTP's credit slow-start fills the pipe within a few round trips and
holds it there; cubic climbs, overshoots, gets cut, and spends seconds
rebuilding — the dynamics behind the Figure 10 averages.

Run:
    python examples/wan_rampup_timeline.py
"""

from repro.apps.gridftp import GridFtpPair
from repro.apps.io import CollectingSink, PatternSource, ZeroSource
from repro.core import ProtocolConfig, RdmaMiddleware
from repro.testbeds import ani_wan

DATASET = 8 << 30
WINDOW = 0.5  # seconds per sample
LINE_GBPS = 10.0


def sample_rftp():
    tb = ani_wan()
    cfg = ProtocolConfig(
        block_size=4 << 20, num_channels=4, source_blocks=48, sink_blocks=48
    )
    server = RdmaMiddleware(tb.dst, tb.dst_dev, tb.cm, cfg)
    sink = CollectingSink(tb.dst)
    server.serve(2811, sink)
    client = RdmaMiddleware(tb.src, tb.src_dev, tb.cm, cfg)
    client.transfer(tb.dst_dev, 2811, PatternSource(tb.src), DATASET)
    return _sample(tb, lambda: sink.bytes_written)


def sample_gridftp():
    tb = ani_wan()
    pair = GridFtpPair(tb, streams=1, block_size=4 << 20,
                       source=ZeroSource(tb.src))
    pair.start(DATASET)
    delivered = pair.conns[0].bytes_delivered
    return _sample(tb, lambda: delivered.total)


def _sample(tb, progress):
    samples = []
    last = 0.0
    while True:
        horizon = tb.engine.now + WINDOW
        tb.engine.run(until=horizon)
        now_bytes = progress()
        samples.append((now_bytes - last) * 8 / WINDOW / 1e9)
        last = now_bytes
        if now_bytes >= DATASET or tb.engine.peek() == float("inf"):
            break
    return samples


def sparkline(samples):
    blocks = " ▁▂▃▄▅▆▇█"
    return "".join(
        blocks[min(int(s / LINE_GBPS * (len(blocks) - 1)), len(blocks) - 1)]
        for s in samples
    )


def main() -> None:
    rftp = sample_rftp()
    grid = sample_gridftp()
    width = max(len(rftp), len(grid))
    print(f"instantaneous goodput, {WINDOW:.1f}s windows, full bar = {LINE_GBPS:g} Gbps\n")
    print(f"RFTP    |{sparkline(rftp):<{width}}| done in {len(rftp) * WINDOW:.1f}s "
          f"(avg {sum(rftp) / len(rftp):.1f} Gbps)")
    print(f"GridFTP |{sparkline(grid):<{width}}| done in {len(grid) * WINDOW:.1f}s "
          f"(avg {sum(grid) / len(grid):.1f} Gbps)")
    print("\nRFTP reaches line rate within the first window (credit doubling"
          " covers the BDP in ~5 RTT = 0.25s); GridFTP's dips are cubic's"
          " multiplicative decreases after loss events.")


if __name__ == "__main__":
    main()
