#!/usr/bin/env python3
"""Programming the middleware API directly (not through RFTP).

Shows what an application built on the middleware looks like: a custom
data source that synthesises verifiable payloads (a checksum stream)
and a custom sink that validates every delivered block — exercising the
paper's application contract: ``get_free_blk``/``put_free_blk`` at the
source and in-order ``get_ready_blk`` delivery at the sink, all hidden
behind ``RdmaMiddleware``.

Run:
    python examples/custom_middleware_app.py
"""

import zlib

from repro.core import ProtocolConfig, RdmaMiddleware
from repro.testbeds import roce_lan


class ChecksummedSource:
    """Generates blocks whose payload carries a CRC of its identity."""

    def __init__(self, host):
        self.host = host
        self.bytes_read = 0

    def read(self, thread, nbytes, seq):
        # Loading costs memset-like CPU per byte, like any real producer.
        yield thread.exec(nbytes * self.host.spec.memset_ns_per_byte * 1e-9)
        self.bytes_read += nbytes
        crc = zlib.crc32(f"{seq}:{nbytes}".encode())
        return {"seq": seq, "nbytes": nbytes, "crc": crc}


class ValidatingSink:
    """Verifies CRC and in-order arrival of every block."""

    def __init__(self, host):
        self.host = host
        self.bytes_written = 0
        self.next_seq = 0
        self.errors = 0

    def write(self, thread, nbytes, header, payload):
        yield thread.exec(self.host.spec.syscall_seconds)
        expected = zlib.crc32(f"{header.seq}:{nbytes}".encode())
        if payload["crc"] != expected or header.seq != self.next_seq:
            self.errors += 1
        self.next_seq += 1
        self.bytes_written += nbytes


def main() -> None:
    tb = roce_lan()
    config = ProtocolConfig(
        block_size=1 << 20,
        num_channels=4,  # out-of-order arrival, in-order delivery
        source_blocks=16,
        sink_blocks=16,
    )

    server = RdmaMiddleware(tb.dst, tb.dst_dev, tb.cm, config)
    sink = ValidatingSink(tb.dst)
    server.serve(4217, sink)

    client = RdmaMiddleware(tb.src, tb.src_dev, tb.cm, config)
    source = ChecksummedSource(tb.src)
    done = client.transfer(tb.dst_dev, 4217, source, total_bytes=256 << 20)

    tb.engine.run()
    outcome = done.value

    print(f"transferred {outcome.bytes >> 20} MiB in {outcome.blocks} blocks "
          f"over {config.num_channels} QPs at {outcome.gbps:.2f} Gbps")
    print(f"validation errors: {sink.errors} (reassembly delivered every "
          "block in order, checksums intact)")
    print(f"credit ledger peak: {outcome.peak_credits}; "
          f"control messages: {outcome.ctrl_sent}+{outcome.ctrl_received}")

    assert sink.errors == 0
    assert sink.bytes_written == outcome.bytes


if __name__ == "__main__":
    main()
